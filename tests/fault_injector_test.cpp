// Tier-1 tests for the transport-fault injector: the backend-agnostic
// stall/throttle state both transports consult at the frame boundary,
// plus the ChaosEngine plan events that drive it.
//
// The central properties: the injector is pure deterministic state (no
// RNG draws), holds are applied per directed link with FIFO delivery
// preserved across healing, and the same plan events execute on the
// simulator by stretching modeled delays — so a transport-fault plan is
// as replayable as any other ChaosPlan.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "net/fault_injector.hpp"
#include "net/network.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::net {
namespace {

std::uint64_t counter_value(sim::Simulator& sim, const std::string& name) {
  return sim.obs().metrics.counter_value(name);
}

TEST(FaultInjector, NoWindowsMeansNoDelay) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  EXPECT_FALSE(fi.active());
  EXPECT_EQ(fi.frame_delay(0, 1, 4096, 1000), 0);
  EXPECT_EQ(fi.writable_at(0, 1, 1000), 1000);
  EXPECT_EQ(obs.metrics.counter_value("chaos.transport.stalled_frames"), 0u);
}

TEST(FaultInjector, StallHoldsOneDirectionUntilWindowEnds) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  fi.stall_link(0, 1, 1000);
  EXPECT_TRUE(fi.active());
  // Held direction: release at the window end.
  EXPECT_EQ(fi.frame_delay(0, 1, 100, 200), 800);
  // Reverse direction is free.
  EXPECT_EQ(fi.frame_delay(1, 0, 100, 200), 0);
  // After expiry the hold is gone (and lazily erased).
  EXPECT_EQ(fi.frame_delay(0, 1, 100, 1000), 0);
  EXPECT_EQ(obs.metrics.counter_value("chaos.transport.stall_windows"), 1u);
  EXPECT_EQ(obs.metrics.counter_value("chaos.transport.stalled_frames"), 1u);
}

TEST(FaultInjector, StallPairHoldsBothDirections) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  fi.stall_pair(3, 7, 5000);
  EXPECT_EQ(fi.frame_delay(3, 7, 10, 0), 5000);
  EXPECT_EQ(fi.frame_delay(7, 3, 10, 0), 5000);
  // Third parties are untouched.
  EXPECT_EQ(fi.frame_delay(3, 4, 10, 0), 0);
}

TEST(FaultInjector, ThrottleSerializesEgress) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  // 1 MB/s: a 250 kB frame takes 250 ms on the wire.
  fi.throttle_peer(0, 1'000'000, 10 * kSecond);
  EXPECT_EQ(fi.frame_delay(0, 1, 250'000, 0), 250 * kMillisecond);
  // Egress is per-sender: the next frame (even to another peer) queues
  // behind the first.
  EXPECT_EQ(fi.frame_delay(0, 2, 250'000, 0), 500 * kMillisecond);
  // Other senders are unaffected.
  EXPECT_EQ(fi.frame_delay(1, 0, 250'000, 0), 0);
  EXPECT_EQ(obs.metrics.counter_value("chaos.transport.throttled_frames"),
            2u);
}

TEST(FaultInjector, FifoFloorPreventsOvertakeAcrossClear) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  fi.stall_link(0, 1, 1000);
  EXPECT_EQ(fi.frame_delay(0, 1, 10, 0), 1000);  // held until 1000
  // Heal mid-window: the stall is gone, but a frame sent now must not
  // overtake the one still being held on the same directed link.
  fi.clear(500);
  EXPECT_FALSE(fi.active());
  EXPECT_EQ(fi.frame_delay(0, 1, 10, 500), 500);  // still releases at 1000
  // Unrelated links carry no floor.
  EXPECT_EQ(fi.frame_delay(2, 3, 10, 500), 0);
  // Once past the floor, the link is fully free again.
  EXPECT_EQ(fi.frame_delay(0, 1, 10, 1200), 0);
}

TEST(FaultInjector, TcpPathGatesWritesAndChargesActualBytes) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  fi.stall_link(0, 1, 2000);
  EXPECT_EQ(fi.writable_at(0, 1, 100), 2000);
  EXPECT_EQ(fi.writable_at(1, 0, 100), 100);

  fi.throttle_peer(5, 1000, kSecond * 100);
  // Nothing written yet: the first write may start immediately...
  EXPECT_EQ(fi.writable_at(5, 6, 0), 0);
  // ...then 1000 bytes at 1000 B/s keep the egress busy for 1 s.
  fi.note_written(5, 1000, 0);
  EXPECT_EQ(fi.writable_at(5, 6, 1), kSecond);
}

TEST(FaultInjector, MetricsDumpParity) {
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  fi.stall_link(0, 1, 10);
  fi.throttle_peer(0, 100, 10);
  const std::string jsonl = obs::metrics_jsonl(obs.metrics);
  EXPECT_NE(jsonl.find("chaos.transport.stall_windows"), std::string::npos);
  EXPECT_NE(jsonl.find("chaos.transport.throttle_windows"),
            std::string::npos);
  EXPECT_NE(jsonl.find("chaos.transport.stalled_frames"), std::string::npos);
  EXPECT_NE(jsonl.find("chaos.transport.throttled_frames"),
            std::string::npos);
  EXPECT_EQ(obs.metrics.counter_value("chaos.transport.stall_windows"), 1u);
  EXPECT_EQ(obs.metrics.counter_value("chaos.transport.throttle_windows"),
            1u);
}

// --- sim-path integration ----------------------------------------------

/// Endpoint recording each payload's arrival (virtual) time.
struct TimedRecorder : Endpoint {
  explicit TimedRecorder(sim::Simulator& sim) : sim(sim) {}
  sim::Simulator& sim;
  std::map<int, SimTime> arrived;
  void deliver(const Envelope& env) override {
    arrived[std::any_cast<int>(env.body)] = sim.now();
  }
};

TEST(FaultInjectorSim, StallWindowStretchesModeledDelay) {
  sim::Simulator sim(7);
  Network net(sim, {.base_latency = kMillisecond});
  TimedRecorder r(sim);
  net.attach(0, &r);
  net.attach(1, &r);
  SimTime clock = 0;
  obs::Observability obs(&clock);
  FaultInjector fi(obs);
  net.transport().set_fault_injector(&fi);
  fi.stall_link(0, 1, 500 * kMillisecond);
  net.send(0, 1, "msg", 1, 100);  // held
  net.send(1, 0, "msg", 2, 100);  // free direction
  sim.run();
  ASSERT_EQ(r.arrived.size(), 2u);
  EXPECT_GE(r.arrived[1], 500 * kMillisecond);
  EXPECT_LT(r.arrived[2], 100 * kMillisecond);
}

TEST(FaultInjectorSim, EngineExecutesTransportFaultPlan) {
  sim::Simulator sim(21);
  Network net(sim, {.base_latency = kMillisecond});
  TimedRecorder r(sim);
  for (PeerId p = 0; p < 6; ++p) net.attach(p, &r);

  chaos::ChaosPlan plan;
  plan.conn_reset_at(100 * kMillisecond, 0, 1,
                     /*sim_outage=*/200 * kMillisecond);
  plan.stall_window(50 * kMillisecond, 150 * kMillisecond, 2, 3);
  plan.throttle_window(0, kSecond, 4, /*bytes_per_sec=*/1'000'000);
  chaos::ChaosEngine engine(net, plan);
  engine.start();

  // Victim of the reset, sent while the modeled outage holds the pair.
  sim.schedule_at(120 * kMillisecond,
                  [&] { net.send(0, 1, "msg", 1, 100); });
  // Victim of the one-way stall.
  sim.schedule_at(60 * kMillisecond,
                  [&] { net.send(2, 3, "msg", 2, 100); });
  // Throttled bulk sender: 500 kB at 1 MB/s ≈ 500 ms of wire time.
  sim.schedule_at(10 * kMillisecond,
                  [&] { net.send(4, 5, "msg", 3, 500'000); });
  // Control: untouched link, arrives at base latency.
  sim.schedule_at(10 * kMillisecond,
                  [&] { net.send(5, 2, "msg", 4, 100); });
  sim.run();

  ASSERT_EQ(r.arrived.size(), 4u);
  EXPECT_GE(r.arrived[1], 300 * kMillisecond);  // held until reset clears
  EXPECT_GE(r.arrived[2], 150 * kMillisecond);  // held until window ends
  EXPECT_GE(r.arrived[3], 500 * kMillisecond);  // serialized at 1 MB/s
  EXPECT_LT(r.arrived[4], 20 * kMillisecond);

  EXPECT_EQ(counter_value(sim, "chaos.transport.conn_reset"), 1u);
  EXPECT_EQ(counter_value(sim, "chaos.transport.stall"), 1u);
  EXPECT_EQ(counter_value(sim, "chaos.transport.throttle"), 1u);
  // One explicit one-way window + the reset's modeled per-direction pair.
  EXPECT_EQ(counter_value(sim, "chaos.transport.stall_windows"), 3u);
  EXPECT_EQ(engine.faults_injected(), 3u);
}

TEST(FaultInjectorSim, ReconnectStormResetsPeriodically) {
  sim::Simulator sim(3);
  Network net(sim, {.base_latency = kMillisecond});
  TimedRecorder r(sim);
  net.attach(0, &r);
  net.attach(1, &r);

  chaos::ReconnectStormEvent storm;
  storm.at = 0;
  storm.until = 500 * kMillisecond;
  storm.period = 100 * kMillisecond;
  storm.pairs = {0, 1};
  chaos::ChaosPlan plan;
  plan.reconnect_storm(storm);
  chaos::ChaosEngine engine(net, plan);
  engine.start();
  sim.run();

  // Ticks at 0,100,...,400 ms; the 500 ms tick sees `until` and stops.
  EXPECT_EQ(counter_value(sim, "chaos.transport.conn_reset"), 5u);
  // Each sim-path reset models the outage as one stall per direction.
  EXPECT_EQ(counter_value(sim, "chaos.transport.stall_windows"), 10u);
}

TEST(FaultInjectorSim, PlanWithoutTransportFaultsRegistersNoCounters) {
  sim::Simulator sim(3);
  Network net(sim, {.base_latency = kMillisecond});
  chaos::ChaosPlan plan;
  plan.crash_at(kSecond, 0);
  chaos::ChaosEngine engine(net, plan);
  engine.start();
  sim.run();
  // Legacy plans must not grow the metric registry (golden dumps).
  const std::string jsonl = obs::metrics_jsonl(sim.obs().metrics);
  EXPECT_EQ(jsonl.find("chaos.transport."), std::string::npos);
  EXPECT_EQ(net.transport().fault_injector(), nullptr);
}

}  // namespace
}  // namespace p2pfl::net
