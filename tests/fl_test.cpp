#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "fl/data.hpp"
#include "fl/fedavg.hpp"
#include "fl/loss.hpp"
#include "fl/model.hpp"
#include "fl/optimizer.hpp"
#include "fl/trainer.hpp"

namespace p2pfl::fl {
namespace {

// --- tensor -------------------------------------------------------------------

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i], static_cast<float>(i));
  }
}

TEST(Tensor, ReshapeSizeMismatchThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), std::logic_error);
}

// --- layers: gradient checking --------------------------------------------------

// Numerical gradient check of dLoss/dParams for a tiny model.
void check_param_gradients(Model& model, const Tensor& x,
                           const std::vector<int>& labels, float tol) {
  Rng rng(0);
  model.zero_grads();
  const Tensor logits = model.forward(x, /*train=*/false, rng);
  const LossResult base = softmax_cross_entropy(logits, labels);
  model.backward(base.grad);
  const auto analytic = model.get_grads();
  auto params = model.get_params();

  const float eps = 1e-3f;
  // Spot-check a spread of parameters (full sweep is O(P * forward)).
  for (std::size_t i = 0; i < params.size();
       i += std::max<std::size_t>(1, params.size() / 25)) {
    const float orig = params[i];
    params[i] = orig + eps;
    model.set_params(params);
    const double up =
        softmax_cross_entropy(model.forward(x, false, rng), labels).loss;
    params[i] = orig - eps;
    model.set_params(params);
    const double down =
        softmax_cross_entropy(model.forward(x, false, rng), labels).loss;
    params[i] = orig;
    model.set_params(params);
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol) << "param " << i;
  }
}

TEST(Gradients, DenseMatchNumeric) {
  Rng rng(3);
  Model m = Model::mlp(6, {5}, 3);
  m.init(rng);
  Tensor x({4, 1, 2, 3});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  check_param_gradients(m, x, {0, 2, 1, 0}, 2e-2f);
}

TEST(Gradients, ConvPoolStackMatchNumeric) {
  Rng rng(4);
  Model m;
  m.add(std::make_unique<Conv2d>(1, 2));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<MaxPool2d>());
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(2 * 2 * 2, 3));
  m.init(rng);
  Tensor x({2, 1, 4, 4});
  for (float& v : x.flat()) v = static_cast<float>(rng.normal(0.0, 1.0));
  check_param_gradients(m, x, {1, 2}, 2e-2f);
}

TEST(Layers, ReLUZeroesNegativesAndGradients) {
  Rng rng(0);
  ReLU relu;
  Tensor x({1, 4}, {-1.0f, 2.0f, -3.0f, 4.0f});
  const Tensor y = relu.forward(x, false, rng);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  const Tensor g = relu.backward(Tensor({1, 4}, {1, 1, 1, 1}));
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 1.0f);
  EXPECT_EQ(g[2], 0.0f);
  EXPECT_EQ(g[3], 1.0f);
}

TEST(Layers, MaxPoolPicksMaxAndRoutesGradient) {
  Rng rng(0);
  MaxPool2d pool;
  Tensor x({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  const Tensor y = pool.forward(x, false, rng);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_EQ(y[0], 5.0f);
  const Tensor g = pool.backward(Tensor({1, 1, 1, 1}, {2.0f}));
  EXPECT_EQ(g.flat()[1], 2.0f);  // routed to the argmax position
  EXPECT_EQ(g.flat()[0], 0.0f);
}

TEST(Layers, DropoutInferenceIsIdentity) {
  Rng rng(5);
  Dropout d(0.5f);
  Tensor x({1, 8}, {1, 2, 3, 4, 5, 6, 7, 8});
  const Tensor y = d.forward(x, /*train=*/false, rng);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(Layers, DropoutTrainScalesSurvivors) {
  Rng rng(6);
  Dropout d(0.5f);
  Tensor x({1, 1000});
  x.fill(1.0f);
  const Tensor y = d.forward(x, /*train=*/true, rng);
  std::size_t zeros = 0;
  for (float v : y.flat()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scale 1/(1-0.5)
    }
  }
  EXPECT_GT(zeros, 350u);
  EXPECT_LT(zeros, 650u);
}

TEST(Layers, DenseShapes) {
  Rng rng(1);
  Dense dense(3, 5);
  dense.init(rng);
  Tensor x({7, 3});
  const Tensor y = dense.forward(x, false, rng);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{7, 5}));
  EXPECT_EQ(dense.params().size(), 3u * 5u + 5u);
}

TEST(Model, PaperCnnParameterCountNear1_25M) {
  // Fig. 5: "relatively small with 1.25M parameters" on 3x32x32 input.
  Model m = Model::paper_cnn(3, 32);
  const double params = static_cast<double>(m.param_count());
  EXPECT_NEAR(params, 1.25e6, 0.02e6);
}

TEST(Model, GetSetParamsRoundTrip) {
  Rng rng(2);
  Model m = Model::mlp(4, {6}, 3);
  m.init(rng);
  auto p = m.get_params();
  p[0] = 42.0f;
  m.set_params(p);
  EXPECT_EQ(m.get_params()[0], 42.0f);
  EXPECT_THROW(m.set_params(std::vector<float>(p.size() + 1)),
               std::logic_error);
}

// --- loss -----------------------------------------------------------------------

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(Loss, ConfidentCorrectPredictionNearZeroLoss) {
  Tensor logits({1, 3}, {20.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{0});
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.correct, 1u);
}

TEST(Loss, GradientSumsToZeroPerSample) {
  Rng rng(7);
  Tensor logits({3, 5});
  for (float& v : logits.flat()) v = static_cast<float>(rng.normal(0, 2));
  const LossResult r =
      softmax_cross_entropy(logits, std::vector<int>{1, 4, 0});
  for (std::size_t s = 0; s < 3; ++s) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 5; ++c) sum += r.grad[s * 5 + c];
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Loss, LargeLogitsAreStable) {
  Tensor logits({1, 3}, {1000.0f, 999.0f, -1000.0f});
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{1});
  EXPECT_TRUE(std::isfinite(r.loss));
  for (float g : r.grad.flat()) EXPECT_TRUE(std::isfinite(g));
}

// --- optimizers -------------------------------------------------------------------

TEST(Optimizers, SgdStepsAgainstGradient) {
  Sgd opt(0.1f);
  std::vector<float> p{1.0f, -1.0f};
  opt.step(p, std::vector<float>{1.0f, -2.0f});
  EXPECT_FLOAT_EQ(p[0], 0.9f);
  EXPECT_FLOAT_EQ(p[1], -0.8f);
}

TEST(Optimizers, AdamConvergesOnQuadratic) {
  // minimize f(x) = (x - 3)^2; gradient 2(x - 3).
  Adam opt(0.1f);
  std::vector<float> x{0.0f};
  for (int i = 0; i < 500; ++i) {
    const std::vector<float> g{2.0f * (x[0] - 3.0f)};
    opt.step(x, g);
  }
  EXPECT_NEAR(x[0], 3.0f, 1e-2f);
}

TEST(Optimizers, AdamFirstStepIsLearningRateSized) {
  Adam opt(0.01f);
  std::vector<float> p{0.0f};
  opt.step(p, std::vector<float>{123.0f});
  // Bias-corrected Adam: first step magnitude ~= lr regardless of g.
  EXPECT_NEAR(p[0], -0.01f, 1e-4f);
}

TEST(Optimizers, AdamResetClearsState) {
  Adam opt(0.01f);
  std::vector<float> p{0.0f};
  opt.step(p, std::vector<float>{1.0f});
  opt.reset();
  std::vector<float> q{0.0f};
  opt.step(q, std::vector<float>{1.0f});
  EXPECT_FLOAT_EQ(p[0], q[0]);
}

// --- fedavg -----------------------------------------------------------------------

TEST(FedAvg, WeightedAverageMatchesFormula) {
  std::vector<std::vector<float>> models{{1.0f, 0.0f}, {4.0f, 6.0f}};
  std::vector<double> weights{1.0, 2.0};
  const auto avg = federated_average(models, weights);
  EXPECT_FLOAT_EQ(avg[0], 3.0f);  // (1*1 + 2*4) / 3
  EXPECT_FLOAT_EQ(avg[1], 4.0f);  // (1*0 + 2*6) / 3
}

TEST(FedAvg, UnweightedIsPlainMean) {
  std::vector<std::vector<float>> models{{2.0f}, {4.0f}, {9.0f}};
  EXPECT_FLOAT_EQ(federated_average(models)[0], 5.0f);
}

TEST(FedAvg, SingleModelIdentity) {
  std::vector<std::vector<float>> models{{7.0f, -2.0f}};
  const auto avg = federated_average(models);
  EXPECT_EQ(avg, models[0]);
}

TEST(FedAvg, MismatchedSizesThrow) {
  std::vector<std::vector<float>> models{{1.0f}, {1.0f, 2.0f}};
  EXPECT_THROW(federated_average(models), std::logic_error);
}

// --- data -------------------------------------------------------------------------

TEST(Data, SyntheticShapesAndLabels) {
  Rng rng(8);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 500;
  spec.test_samples = 100;
  const TrainTest tt = make_synthetic(spec, rng);
  EXPECT_EQ(tt.train.size(), 500u);
  EXPECT_EQ(tt.test.size(), 100u);
  EXPECT_EQ(tt.train.sample_floats(), 28u * 28u);
  for (int l : tt.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
  // All ten classes present.
  std::map<int, int> hist;
  for (int l : tt.train.labels) ++hist[l];
  EXPECT_EQ(hist.size(), 10u);
}

TEST(Data, DeterministicForSeed) {
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 50;
  spec.test_samples = 10;
  Rng a(9), b(9);
  const TrainTest ta = make_synthetic(spec, a);
  const TrainTest tb = make_synthetic(spec, b);
  EXPECT_EQ(ta.train.images, tb.train.images);
  EXPECT_EQ(ta.train.labels, tb.train.labels);
}

TEST(Data, IidPartitionCoversAllSamplesOnce) {
  Rng rng(10);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 100;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  const auto parts = partition_iid(tt.train, 7, rng);
  ASSERT_EQ(parts.size(), 7u);
  std::vector<std::size_t> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(all[i], i);
}

TEST(Data, NonIid0IsTwoClassesPerPeer) {
  Rng rng(11);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 1000;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  const auto parts = partition_non_iid(tt.train, 5, 0.0, rng);
  for (const auto& p : parts) {
    std::map<int, int> classes;
    for (std::size_t idx : p) ++classes[tt.train.labels[idx]];
    EXPECT_EQ(classes.size(), 2u);
  }
}

TEST(Data, NonIid5IsMostlyTwoClasses) {
  Rng rng(12);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 2000;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  const auto parts = partition_non_iid(tt.train, 4, 0.05, rng);
  for (const auto& p : parts) {
    std::map<int, int> classes;
    for (std::size_t idx : p) ++classes[tt.train.labels[idx]];
    EXPECT_GE(classes.size(), 3u);  // some off-class spill
    // Top-2 classes hold ~95%.
    std::vector<int> counts;
    for (auto& [c, n] : classes) counts.push_back(n);
    std::sort(counts.rbegin(), counts.rend());
    const double top2 = counts[0] + counts[1];
    const double total = std::accumulate(counts.begin(), counts.end(), 0);
    EXPECT_NEAR(top2 / total, 0.95, 0.02);
  }
}

TEST(Data, BatchGathersRequestedSamples) {
  Rng rng(13);
  SyntheticSpec spec;
  spec.height = 2;
  spec.width = 2;
  spec.train_samples = 20;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  const std::vector<std::size_t> idx{3, 7};
  const Tensor b = tt.train.batch(idx);
  EXPECT_EQ(b.shape(), (std::vector<std::size_t>{2, 1, 2, 2}));
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(b[i], tt.train.image(3)[i]);
    EXPECT_EQ(b[4 + i], tt.train.image(7)[i]);
  }
}

TEST(Data, DirichletQuotaAndBounds) {
  Rng rng(20);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 1000;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  const auto parts = partition_dirichlet(tt.train, 5, 0.5, rng);
  ASSERT_EQ(parts.size(), 5u);
  for (const auto& p : parts) {
    EXPECT_EQ(p.size(), 200u);  // quota = size / peers
    for (std::size_t idx : p) EXPECT_LT(idx, tt.train.size());
  }
}

TEST(Data, DirichletAlphaControlsSkew) {
  // Skew (max class share per peer) must fall as alpha grows.
  Rng rng(21);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 2000;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  auto max_share = [&](double alpha) {
    Rng r(33);
    const auto parts = partition_dirichlet(tt.train, 6, alpha, r);
    double worst = 0.0;
    for (const auto& p : parts) {
      std::map<int, int> hist;
      for (std::size_t idx : p) ++hist[tt.train.labels[idx]];
      int top = 0;
      for (auto& [c, n] : hist) top = std::max(top, n);
      worst = std::max(worst,
                       static_cast<double>(top) /
                           static_cast<double>(p.size()));
    }
    return worst;
  };
  const double skew_low = max_share(0.05);   // near one-class peers
  const double skew_high = max_share(100.0); // near uniform
  EXPECT_GT(skew_low, 0.6);
  EXPECT_LT(skew_high, 0.25);
  EXPECT_GT(skew_low, skew_high);
}

TEST(Data, DirichletDeterministicForSeed) {
  Rng rng(22);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 300;
  spec.test_samples = 10;
  const TrainTest tt = make_synthetic(spec, rng);
  Rng a(5), b(5);
  EXPECT_EQ(partition_dirichlet(tt.train, 4, 1.0, a),
            partition_dirichlet(tt.train, 4, 1.0, b));
}

// --- training -----------------------------------------------------------------------

TEST(Trainer, LossDecreasesOverRounds) {
  Rng rng(14);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 600;
  spec.test_samples = 200;
  const TrainTest tt = make_synthetic(spec, rng);
  Model m = Model::mlp(28 * 28, {32});
  m.init(rng);
  std::vector<std::size_t> idx(tt.train.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  PeerTrainer trainer(std::move(m), std::make_unique<Adam>(1e-3f), tt.train,
                      idx, Rng(15));
  const double first = trainer.train_round({});
  double last = first;
  for (int i = 0; i < 5; ++i) last = trainer.train_round({});
  EXPECT_LT(last, first * 0.8);
  const EvalResult ev = trainer.evaluate(tt.test);
  EXPECT_GT(ev.accuracy, 0.3);  // far above the 10% chance level
}

TEST(Trainer, EvaluateAccuracyBoundsAndDeterminism) {
  Rng rng(16);
  SyntheticSpec spec = mnist_like();
  spec.train_samples = 100;
  spec.test_samples = 50;
  const TrainTest tt = make_synthetic(spec, rng);
  Model m = Model::mlp(28 * 28, {16});
  m.init(rng);
  Rng e1(1), e2(1);
  const EvalResult a = evaluate_model(m, tt.test, e1);
  const EvalResult b = evaluate_model(m, tt.test, e2);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_GE(a.accuracy, 0.0);
  EXPECT_LE(a.accuracy, 1.0);
}

}  // namespace
}  // namespace p2pfl::fl
