// Long chaos soaks (slow suite; the fast configurations live in
// chaos_test.cpp).
//
// Two layers are soaked here:
//   * the aggregation stack via run_chaos_soak — many rounds under
//     simultaneous loss, duplication, reordering, crash/restart churn
//     and a partition window, across several seeds;
//   * the full P2pFlSystem (Raft leadership + aggregation + training)
//     under a ChaosEngine partition window, checking that rounds abort
//     while the FedAvg leader is cut off and resume after healing.
#include <gtest/gtest.h>

#include <memory>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "chaos/soak.hpp"
#include "core/system.hpp"

namespace p2pfl::chaos {
namespace {

TEST(ChaosSoakSlow, LongSoakSurvivesLossDupChurnAndPartition) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    ChaosSoakConfig cfg;
    cfg.peers = 12;
    cfg.groups = 3;
    cfg.rounds = 20;
    cfg.dim = 8;
    cfg.seed = seed;
    cfg.round_interval = 1 * kSecond;
    cfg.net.faults.drop_prob = 0.10;
    cfg.net.faults.duplicate_prob = 0.10;
    cfg.net.faults.reorder_prob = 0.10;
    cfg.net.faults.reorder_jitter = 100 * kMillisecond;
    cfg.churn_mttf = 4 * kSecond;
    cfg.churn_mttr = 600 * kMillisecond;
    cfg.partition_at = 5 * kSecond + 100 * kMillisecond;
    cfg.heal_at = 7 * kSecond + 100 * kMillisecond;
    const ChaosSoakResult res = run_chaos_soak(cfg);
    EXPECT_TRUE(res.liveness_ok)
        << "seed " << seed << ": committed " << res.rounds_committed
        << "/" << res.rounds_started;
    EXPECT_TRUE(res.all_commits_exact)
        << "seed " << seed << " max error " << res.max_abs_error;
    EXPECT_GE(res.rounds_committed, 5u) << "seed " << seed;
    EXPECT_GT(res.crashes, 0u) << "seed " << seed << ": churn never fired";
    // The ambient faults really were active the whole run.
    EXPECT_GT(res.traffic.dropped_by_reason.at("chaos_loss"), 0u);
  }
}

TEST(ChaosSoakSlow, HighLossStillCommitsExactRounds) {
  // 25% loss is brutal (a 4-peer share phase needs ~36 deliveries);
  // retransmission must still land enough rounds, and every landed
  // round must be exact.
  ChaosSoakConfig cfg;
  cfg.peers = 8;
  cfg.groups = 2;
  cfg.rounds = 12;
  cfg.seed = 17;
  cfg.round_interval = 2 * kSecond;
  cfg.net.faults.drop_prob = 0.25;
  cfg.sac_share_retries = 10;
  const ChaosSoakResult res = run_chaos_soak(cfg);
  EXPECT_TRUE(res.liveness_ok);
  EXPECT_TRUE(res.all_commits_exact) << "max error " << res.max_abs_error;
  EXPECT_GE(res.rounds_committed, 4u);
}

// Full-system harness (mirrors tests/system_test.cpp) with an
// injectable network configuration.
struct FullSystemChaos {
  FullSystemChaos(std::size_t peers, std::size_t groups, std::uint64_t seed,
                  net::NetworkConfig net_cfg = {.base_latency =
                                                    15 * kMillisecond})
      : sim(seed), net(sim, net_cfg) {
    fl::SyntheticSpec spec;
    spec.height = 8;
    spec.width = 8;
    spec.train_samples = 400;
    spec.test_samples = 120;
    spec.noise_scale = 0.6;
    Rng data_rng(seed);
    data = std::make_unique<fl::TrainTest>(fl::make_synthetic(spec, data_rng));
    parts = fl::partition_iid(data->train, peers, data_rng);

    core::SystemConfig cfg;
    cfg.raft.raft.election_timeout_min = 50 * kMillisecond;
    cfg.raft.raft.election_timeout_max = 100 * kMillisecond;
    cfg.raft.fedavg_presence_poll = 100 * kMillisecond;
    cfg.round_interval = 1 * kSecond;
    cfg.train_duration = 100 * kMillisecond;
    cfg.learning_rate = 3e-3f;
    cfg.seed = seed;
    sys = std::make_unique<core::P2pFlSystem>(
        core::Topology::even(peers, groups), cfg, net, data->train,
        data->test, parts, [] { return fl::Model::mlp(64, {16}); });
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<fl::TrainTest> data;
  fl::PeerIndices parts;
  std::unique_ptr<core::P2pFlSystem> sys;
};

TEST(ChaosSoakSlow, SystemAbortsRoundsUnderPartitionAndRecovers) {
  FullSystemChaos f(9, 3, 7);
  f.sys->start();
  f.sim.run_for(6 * kSecond);
  ASSERT_GE(f.sys->rounds_completed(), 1u);

  // Cut subgroup 0 (wherever the FedAvg leader sits, two of the three
  // subgroups end up on the other side) for four seconds, driven
  // through a ChaosPlan so the faults land on the trace/metrics too.
  ChaosPlan plan;
  plan.partition_window(f.sim.now() + 100 * kMillisecond,
                        f.sim.now() + 4 * kSecond + 100 * kMillisecond,
                        {{0, 1, 2}, {3, 4, 5, 6, 7, 8}});
  ChaosEngine engine(f.net, std::move(plan));
  engine.start();
  f.sim.run_for(5 * kSecond);  // window plus a little settling

  // During the window some started rounds could not complete: either
  // the FedAvg leader was on the 3-peer island (no quorum of uploads)
  // or cross-partition subgroups never delivered theirs.
  EXPECT_GT(f.sys->rounds_aborted(), 0u);

  // After healing, progress resumes.
  const std::size_t after_heal = f.sys->rounds_completed();
  f.sim.run_for(10 * kSecond);
  EXPECT_GE(f.sys->rounds_completed(), after_heal + 3)
      << "rounds must keep completing after the partition heals";
}

TEST(ChaosSoakSlow, SystemLearnsOnLossyNetwork) {
  net::NetworkConfig cfg{.base_latency = 15 * kMillisecond};
  cfg.faults.drop_prob = 0.05;
  cfg.faults.duplicate_prob = 0.05;
  FullSystemChaos f(6, 2, 13, cfg);
  f.sys->start();
  f.sim.run_for(30 * kSecond);
  EXPECT_GE(f.sys->rounds_completed(), 5u);
  EXPECT_GT(f.sys->evaluate_global().accuracy, 0.4);
}

}  // namespace
}  // namespace p2pfl::chaos
