// Long chaos soaks (slow suite; the fast configurations live in
// chaos_test.cpp).
//
// Two layers are soaked here:
//   * the aggregation stack via run_chaos_soak — many rounds under
//     simultaneous loss, duplication, reordering, crash/restart churn
//     and a partition window, across several seeds;
//   * the full P2pFlSystem (Raft leadership + aggregation + training)
//     under a ChaosEngine partition window, checking that rounds abort
//     while the FedAvg leader is cut off and resume after healing.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "chaos/soak.hpp"
#include "core/system.hpp"
#include "core/watchdog.hpp"

namespace p2pfl::chaos {
namespace {

TEST(ChaosSoakSlow, LongSoakSurvivesLossDupChurnAndPartition) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    ChaosSoakConfig cfg;
    cfg.peers = 12;
    cfg.groups = 3;
    cfg.rounds = 20;
    cfg.dim = 8;
    cfg.seed = seed;
    cfg.round_interval = 1 * kSecond;
    cfg.net.faults.drop_prob = 0.10;
    cfg.net.faults.duplicate_prob = 0.10;
    cfg.net.faults.reorder_prob = 0.10;
    cfg.net.faults.reorder_jitter = 100 * kMillisecond;
    cfg.churn_mttf = 4 * kSecond;
    cfg.churn_mttr = 600 * kMillisecond;
    cfg.partition_at = 5 * kSecond + 100 * kMillisecond;
    cfg.heal_at = 7 * kSecond + 100 * kMillisecond;
    const ChaosSoakResult res = run_chaos_soak(cfg);
    EXPECT_TRUE(res.liveness_ok)
        << "seed " << seed << ": committed " << res.rounds_committed
        << "/" << res.rounds_started;
    EXPECT_TRUE(res.all_commits_exact)
        << "seed " << seed << " max error " << res.max_abs_error;
    EXPECT_GE(res.rounds_committed, 5u) << "seed " << seed;
    EXPECT_GT(res.crashes, 0u) << "seed " << seed << ": churn never fired";
    // The ambient faults really were active the whole run.
    EXPECT_GT(res.traffic.dropped_by_reason.at("chaos_loss"), 0u);
  }
}

TEST(ChaosSoakSlow, HighLossStillCommitsExactRounds) {
  // 25% loss is brutal (a 4-peer share phase needs ~36 deliveries);
  // retransmission must still land enough rounds, and every landed
  // round must be exact.
  ChaosSoakConfig cfg;
  cfg.peers = 8;
  cfg.groups = 2;
  cfg.rounds = 12;
  cfg.seed = 17;
  cfg.round_interval = 2 * kSecond;
  cfg.net.faults.drop_prob = 0.25;
  cfg.sac_share_retries = 10;
  const ChaosSoakResult res = run_chaos_soak(cfg);
  EXPECT_TRUE(res.liveness_ok);
  EXPECT_TRUE(res.all_commits_exact) << "max error " << res.max_abs_error;
  EXPECT_GE(res.rounds_committed, 4u);
}

// Full-system harness (mirrors tests/system_test.cpp) with an
// injectable network configuration.
struct FullSystemChaos {
  FullSystemChaos(std::size_t peers, std::size_t groups, std::uint64_t seed,
                  net::NetworkConfig net_cfg = {.base_latency =
                                                    15 * kMillisecond})
      : sim(seed), net(sim, net_cfg) {
    fl::SyntheticSpec spec;
    spec.height = 8;
    spec.width = 8;
    spec.train_samples = 400;
    spec.test_samples = 120;
    spec.noise_scale = 0.6;
    Rng data_rng(seed);
    data = std::make_unique<fl::TrainTest>(fl::make_synthetic(spec, data_rng));
    parts = fl::partition_iid(data->train, peers, data_rng);

    core::SystemConfig cfg;
    cfg.raft.raft.election_timeout_min = 50 * kMillisecond;
    cfg.raft.raft.election_timeout_max = 100 * kMillisecond;
    cfg.raft.fedavg_presence_poll = 100 * kMillisecond;
    cfg.round_interval = 1 * kSecond;
    cfg.train_duration = 100 * kMillisecond;
    cfg.learning_rate = 3e-3f;
    cfg.seed = seed;
    sys = std::make_unique<core::P2pFlSystem>(
        core::Topology::even(peers, groups), cfg, net, data->train,
        data->test, parts, [] { return fl::Model::mlp(64, {16}); });
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<fl::TrainTest> data;
  fl::PeerIndices parts;
  std::unique_ptr<core::P2pFlSystem> sys;
};

TEST(ChaosSoakSlow, SystemAbortsRoundsUnderPartitionAndRecovers) {
  FullSystemChaos f(9, 3, 7);
  f.sys->start();
  f.sim.run_for(6 * kSecond);
  ASSERT_GE(f.sys->rounds_completed(), 1u);

  // Cut subgroup 0 (wherever the FedAvg leader sits, two of the three
  // subgroups end up on the other side) for four seconds, driven
  // through a ChaosPlan so the faults land on the trace/metrics too.
  ChaosPlan plan;
  plan.partition_window(f.sim.now() + 100 * kMillisecond,
                        f.sim.now() + 4 * kSecond + 100 * kMillisecond,
                        {{0, 1, 2}, {3, 4, 5, 6, 7, 8}});
  ChaosEngine engine(f.net, std::move(plan));
  engine.start();
  f.sim.run_for(5 * kSecond);  // window plus a little settling

  // During the window some started rounds could not complete: either
  // the FedAvg leader was on the 3-peer island (no quorum of uploads)
  // or cross-partition subgroups never delivered theirs.
  EXPECT_GT(f.sys->rounds_aborted(), 0u);

  // After healing, progress resumes.
  const std::size_t after_heal = f.sys->rounds_completed();
  f.sim.run_for(10 * kSecond);
  EXPECT_GE(f.sys->rounds_completed(), after_heal + 3)
      << "rounds must keep completing after the partition heals";
}

TEST(ChaosSoakSlow, CrashWindowTripsLatencySloWithAlertPostmortem) {
  // A leader-severing window forces rounds to run to their collect
  // timeout (or die outright): their censored latency must trip the
  // round-latency SLO, and each breach must carry a flight-recorder
  // post-mortem. The identical fault-free run must stay green.
  const auto run = [](bool partition) {
    ChaosSoakConfig cfg;
    cfg.peers = 12;
    cfg.groups = 3;
    cfg.rounds = 8;
    cfg.seed = 3;
    cfg.round_interval = 1 * kSecond;
    if (partition) {
      cfg.partition_at = 2200 * kMillisecond;
      cfg.heal_at = 5200 * kMillisecond;
    }
    cfg.capture_spans = true;
    cfg.slo_rules = obs::default_rules(/*max_latency_ms=*/750.0);
    return run_chaos_soak(cfg);
  };

  const ChaosSoakResult healthy = run(false);
  EXPECT_TRUE(healthy.slo_report.healthy())
      << healthy.slo_report.table();
  EXPECT_TRUE(healthy.slo_alerts.empty());

  const ChaosSoakResult breached = run(true);
  EXPECT_FALSE(breached.slo_report.healthy());
  std::size_t latency_breaches = 0;
  for (const obs::SloBreach& b : breached.slo_report.breaches) {
    latency_breaches += b.rule == "round_latency";
  }
  EXPECT_GT(latency_breaches, 0u) << breached.slo_report.table();

  ASSERT_FALSE(breached.slo_alerts.empty());
  bool found_latency_alert = false;
  for (const obs::SloAlert& a : breached.slo_alerts) {
    if (a.breach.rule != "round_latency") continue;
    found_latency_alert = true;
    // The alert must attribute the breach: a rendered table plus the
    // breaching round's critical path from the span flight recorder.
    EXPECT_FALSE(a.table.empty());
    EXPECT_TRUE(a.critical_path.found) << "round " << a.breach.round;
    EXPECT_FALSE(a.spans_jsonl.empty());
  }
  EXPECT_TRUE(found_latency_alert);
  // The breaching rounds are visible in the JSONL stream as censored
  // latency, not as gaps.
  EXPECT_NE(breached.timeseries_jsonl.find("\"latency_ms\":1000"),
            std::string::npos);
}

TEST(ChaosSoakSlow, WatchdogAttachesToFullSystemRounds) {
  // The attach() path: P2pFlSystem round hooks (started / committed /
  // aborted) drive the watchdog directly, so a live deployment gets the
  // same per-round series as the soak harness.
  FullSystemChaos f(9, 3, 7);
  core::WatchdogConfig wcfg;
  wcfg.rules = obs::default_rules(/*max_latency_ms=*/5000.0);
  core::RoundWatchdog watchdog(f.sim, f.net, core::Topology::even(9, 3),
                               wcfg);
  watchdog.attach(*f.sys);
  f.sys->start();
  f.sim.run_for(6 * kSecond);
  ASSERT_GE(f.sys->rounds_completed(), 1u);

  ChaosPlan plan;
  plan.partition_window(f.sim.now() + 100 * kMillisecond,
                        f.sim.now() + 3 * kSecond + 100 * kMillisecond,
                        {{0, 1, 2}, {3, 4, 5, 6, 7, 8}});
  ChaosEngine engine(f.net, std::move(plan));
  engine.start();
  f.sim.run_for(8 * kSecond);

  const obs::RoundSeries& series = watchdog.series();
  ASSERT_FALSE(series.empty());
  std::size_t committed = 0, uncommitted = 0;
  for (const obs::RoundSample& s : series.samples()) {
    (s.committed ? committed : uncommitted) += 1;
    EXPECT_GT(s.end, s.start) << "round " << s.round;
  }
  EXPECT_GT(committed, 0u);
  // The partition window produced at least one aborted/censored round.
  EXPECT_GT(uncommitted, 0u);
  // Typed SLO metrics were registered on the system's registry.
  // `slo.evaluations` counts rule evaluations; the always-applicable
  // latency threshold rule alone contributes one per sample.
  EXPECT_GE(f.sim.obs().metrics.counter_value("slo.evaluations"),
            series.total_appended());
}

TEST(ChaosSoakSlow, SystemLearnsOnLossyNetwork) {
  net::NetworkConfig cfg{.base_latency = 15 * kMillisecond};
  cfg.faults.drop_prob = 0.05;
  cfg.faults.duplicate_prob = 0.05;
  FullSystemChaos f(6, 2, 13, cfg);
  f.sys->start();
  f.sim.run_for(30 * kSecond);
  EXPECT_GE(f.sys->rounds_completed(), 5u);
  EXPECT_GT(f.sys->evaluate_global().accuracy, 0.4);
}

}  // namespace
}  // namespace p2pfl::chaos
