// Tests for the causal span layer: SpanRecorder mechanics (stack
// adoption, flight-recorder ring, per-round cap), the critical-path
// extractor on hand-built DAGs, and the end-to-end invariants over real
// aggregation rounds — every opened span closes by round end, parents
// resolve within the round, and the phase attribution sums *exactly* to
// the measured round latency, fault-free and under a ChaosPlan.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "chaos/soak.hpp"
#include "core/topology.hpp"
#include "core/two_layer_agg.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "obs/critical_path.hpp"
#include "obs/span.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::obs {
namespace {

// --- SpanRecorder unit tests ------------------------------------------------

TEST(SpanRecorder, DisabledRecordsNothing) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  EXPECT_EQ(rec.open(SpanKind::kRound, "r", 0, 1), kNoSpan);
  rec.close(42);          // unknown ids are ignored
  rec.close_aborted(42);  // likewise
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.current(), kNoSpan);
}

TEST(SpanRecorder, AdoptsCurrentSpanAsParent) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  const SpanId a = rec.open(SpanKind::kRound, "r", 0, 1);
  rec.push(a);
  const SpanId b = rec.open(SpanKind::kFedCollect, "c", 0, 1);  // adopts a
  const SpanId c = rec.open(SpanKind::kLink, "l", 0, 1, b);     // explicit
  rec.pop();
  ASSERT_NE(a, kNoSpan);
  EXPECT_EQ(rec.find(b)->parent, a);
  EXPECT_EQ(rec.find(c)->parent, b);
  // The context travels with the stack for Envelope stamping.
  rec.push(c);
  EXPECT_EQ(rec.current_ctx().span, c);
  EXPECT_EQ(rec.current_ctx().round, 1u);
  rec.pop();
  EXPECT_EQ(rec.current_ctx().span, kNoSpan);
}

TEST(SpanRecorder, CloseRecordsCloserAndIgnoresSelfAndDoubleClose) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  const SpanId wait = rec.open(SpanKind::kFedCollect, "c", 0, 1);
  const SpanId link = rec.open(SpanKind::kLink, "l", 1, 1);
  clock = 30;
  rec.close(link);
  rec.close(wait, wait);  // self-closer must be dropped, not recorded
  EXPECT_EQ(rec.find(wait)->closed_by, kNoSpan);
  EXPECT_EQ(rec.find(wait)->end, 30);
  EXPECT_FALSE(rec.find(wait)->open);
  clock = 99;
  rec.close(wait, link);  // already closed: no-op
  EXPECT_EQ(rec.find(wait)->end, 30);
  EXPECT_EQ(rec.find(wait)->closed_by, kNoSpan);
  // close_aborted marks the flag and keeps the close time.
  const SpanId dead = rec.open(SpanKind::kUpload, "u", 2, 1);
  clock = 120;
  rec.close_aborted(dead);
  EXPECT_TRUE(rec.find(dead)->aborted);
  EXPECT_EQ(rec.find(dead)->end, 120);
}

TEST(SpanRecorder, RingEvictsOldestRoundsButKeepsAmbientBucket) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  rec.set_max_rounds(2);
  const SpanId ambient = rec.open(SpanKind::kRaftReplicate, "raft", 0, 0);
  std::vector<SpanId> per_round;
  for (std::uint64_t r = 1; r <= 4; ++r) {
    per_round.push_back(rec.open(SpanKind::kRound, "r", 0, r));
  }
  // Newest two rounds retained, plus round 0 which is exempt.
  EXPECT_EQ(rec.rounds(), (std::vector<std::uint64_t>{0, 3, 4}));
  EXPECT_EQ(rec.evicted_rounds(), 2u);
  EXPECT_NE(rec.find(ambient), nullptr);
  EXPECT_EQ(rec.find(per_round[0]), nullptr);  // round 1 evicted
  EXPECT_EQ(rec.find(per_round[1]), nullptr);  // round 2 evicted
  EXPECT_NE(rec.find(per_round[2]), nullptr);
  EXPECT_NE(rec.find(per_round[3]), nullptr);
}

TEST(SpanRecorder, PerRoundCapCountsDroppedSpans) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  rec.set_max_spans_per_round(3);
  for (int i = 0; i < 5; ++i) {
    const SpanId s = rec.open(SpanKind::kLink, "l", 0, 1);
    if (i < 3) {
      EXPECT_NE(s, kNoSpan);
    } else {
      EXPECT_EQ(s, kNoSpan);
    }
  }
  EXPECT_EQ(rec.round_spans(1)->size(), 3u);
  EXPECT_EQ(rec.dropped_spans(), 2u);
}

// --- critical path on a hand-built DAG -------------------------------------

TEST(CriticalPath, HandBuiltDagTilesExactly) {
  // round[0..32] <- merge[30..32] <- link2[15..30] <- (hop via closed_by)
  // link1[0..15]; the share phase span overlaps link1 but the walk hops
  // through the closer, attributing the wire time to the wire.
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  const SpanId round = rec.open(SpanKind::kRound, "agg/round", 0, 1);
  const SpanId share =
      rec.open(SpanKind::kSacShare, "sac/sg0/share_phase", 1, 1, round);
  const SpanId link1 =
      rec.open(SpanKind::kLink, "sac/sg0/share", 1, 1, share);
  clock = 15;
  rec.close(link1);
  rec.close(share, link1);
  const SpanId link2 = rec.open(SpanKind::kLink, "agg/upload", 1, 1, share);
  clock = 30;
  rec.close(link2);
  const SpanId merge = rec.open(SpanKind::kFedMerge, "agg/merge", 0, 1, link2);
  clock = 32;
  rec.close(merge);
  rec.close(round, merge);

  const CriticalPath cp = extract_critical_path(rec, 1);
  ASSERT_TRUE(cp.found);
  EXPECT_TRUE(cp.complete);
  EXPECT_EQ(cp.total(), 32);
  ASSERT_EQ(cp.segments.size(), 3u);
  EXPECT_EQ(cp.segments[0].phase, "link:sac/sg*/share");
  EXPECT_EQ(cp.segments[0].start, 0);
  EXPECT_EQ(cp.segments[0].end, 15);
  EXPECT_EQ(cp.segments[1].phase, "link:agg/upload");
  EXPECT_EQ(cp.segments[1].end, 30);
  EXPECT_EQ(cp.segments[2].phase, "fed_merge");
  EXPECT_EQ(cp.segments[2].end, 32);
  SimDuration phase_sum = 0;
  for (const auto& [phase, d] : cp.phase_totals) phase_sum += d;
  EXPECT_EQ(phase_sum, cp.total());
  // The rendered table certifies the exact sum.
  EXPECT_NE(critical_path_table(cp).find("(= round latency)"),
            std::string::npos);
}

TEST(CriticalPath, CausalGapBecomesExplicitUnattributedPhase) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  const SpanId round = rec.open(SpanKind::kRound, "agg/round", 0, 1);
  clock = 10;
  // A parentless closer starting at t=10 leaves [0,10] causally
  // unexplained: it must be attributed explicitly, never dropped.
  const SpanId merge = rec.open(SpanKind::kFedMerge, "agg/merge", 0, 1, 0);
  clock = 20;
  rec.close(merge);
  rec.close(round, merge);
  const CriticalPath cp = extract_critical_path(rec, 1);
  ASSERT_TRUE(cp.found);
  EXPECT_FALSE(cp.complete);
  EXPECT_EQ(cp.total(), 20);
  ASSERT_EQ(cp.segments.size(), 2u);
  EXPECT_EQ(cp.segments[0].phase, "(unattributed)");
  EXPECT_EQ(cp.segments[0].end, 10);
  SimDuration phase_sum = 0;
  for (const auto& [phase, d] : cp.phase_totals) phase_sum += d;
  EXPECT_EQ(phase_sum, cp.total());
}

TEST(CriticalPath, AbortedOrMissingRoundIsNotFound) {
  SimTime clock = 0;
  SpanRecorder rec(&clock);
  rec.set_enabled(true);
  EXPECT_FALSE(extract_critical_path(rec, 1).found);
  const SpanId round = rec.open(SpanKind::kRound, "agg/round", 0, 2);
  clock = 5;
  rec.close_aborted(round);
  EXPECT_FALSE(extract_critical_path(rec, 2).found);
}

// --- end-to-end invariants over real aggregation rounds ---------------------

struct RoundFixture {
  explicit RoundFixture(std::uint64_t seed, net::LinkFaults faults = {})
      : sim(seed), net(sim, make_cfg(faults)), topo(core::Topology::even(6, 2)) {
    sim.obs().spans.set_enabled(true);
    for (PeerId id : topo.all_peers()) {
      auto host = std::make_unique<net::PeerHost>();
      net.attach(id, host.get());
      hosts.emplace(id, std::move(host));
    }
    core::AggregationConfig cfg;
    cfg.collect_timeout = 1 * kSecond;
    cfg.sac_share_timeout = 150 * kMillisecond;
    cfg.sac_subtotal_timeout = 150 * kMillisecond;
    cfg.upload_retry = 300 * kMillisecond;
    agg = std::make_unique<core::TwoLayerAggregator>(
        topo, cfg, net, [this](PeerId id) -> net::PeerHost& {
          return *hosts.at(id);
        });
    agg->on_global_model = [this](std::uint64_t r, const secagg::Vector&,
                                  std::size_t) { committed_at[r] = sim.now(); };
  }

  static net::NetworkConfig make_cfg(const net::LinkFaults& faults) {
    net::NetworkConfig cfg{.base_latency = 15 * kMillisecond};
    cfg.faults = faults;
    return cfg;
  }

  /// Runs rounds 1..n back to back, then tears down any undecided round.
  void run_rounds(std::uint64_t n) {
    for (std::uint64_t r = 1; r <= n; ++r) {
      core::RoundLeadership lead;
      lead.subgroup_leaders = {0, 3};
      lead.fedavg_leader = 0;
      started_at[r] = sim.now();
      agg->begin_round(r, lead, [](PeerId id) {
        return secagg::Vector(4, static_cast<float>(id + 1));
      });
      sim.run_for(2 * kSecond);
    }
    agg->abort_round();
  }

  sim::Simulator sim;
  net::Network net;
  core::Topology topo;
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  std::unique_ptr<core::TwoLayerAggregator> agg;
  std::map<std::uint64_t, SimTime> started_at;
  std::map<std::uint64_t, SimTime> committed_at;
};

void check_span_invariants(const SpanRecorder& rec) {
  ASSERT_GT(rec.size(), 0u);
  for (const auto& [id, s] : rec.all()) {
    // Every opened span was closed by round teardown.
    EXPECT_FALSE(s.open) << "span #" << id << " (" << s.name
                         << ") never closed";
    EXPECT_LE(s.start, s.end) << "span #" << id;
    // Parents resolve, and within the same round (or the ambient bucket).
    if (s.parent != kNoSpan) {
      const SpanRecord* p = rec.find(s.parent);
      ASSERT_NE(p, nullptr) << "span #" << id << " parent dangles";
      EXPECT_TRUE(p->round == s.round || p->round == 0)
          << "span #" << id << " parent crosses rounds";
      EXPECT_LE(p->start, s.start) << "span #" << id;
    }
    if (s.closed_by != kNoSpan) {
      EXPECT_NE(s.closed_by, id) << "span #" << id << " closed by itself";
      EXPECT_NE(rec.find(s.closed_by), nullptr)
          << "span #" << id << " closer dangles";
    }
  }
}

void check_exact_attribution(const SpanRecorder& rec, std::uint64_t round,
                             SimTime started, SimTime committed) {
  const CriticalPath cp = extract_critical_path(rec, round);
  ASSERT_TRUE(cp.found) << "round " << round;
  EXPECT_EQ(cp.start, started) << "round " << round;
  EXPECT_EQ(cp.end, committed) << "round " << round;
  // The tiles are chronological, gap-free, and sum to the latency.
  ASSERT_FALSE(cp.segments.empty());
  EXPECT_EQ(cp.segments.front().start, cp.start);
  EXPECT_EQ(cp.segments.back().end, cp.end);
  for (std::size_t i = 1; i < cp.segments.size(); ++i) {
    EXPECT_EQ(cp.segments[i].start, cp.segments[i - 1].end)
        << "round " << round << " segment " << i;
  }
  SimDuration seg_sum = 0;
  for (const auto& seg : cp.segments) seg_sum += seg.end - seg.start;
  EXPECT_EQ(seg_sum, committed - started) << "round " << round;
  SimDuration phase_sum = 0;
  for (const auto& [phase, d] : cp.phase_totals) phase_sum += d;
  EXPECT_EQ(phase_sum, committed - started) << "round " << round;
}

TEST(SpanInvariants, FaultFreeRoundsAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    RoundFixture f(seed);
    f.run_rounds(2);
    ASSERT_EQ(f.committed_at.size(), 2u) << "seed " << seed;
    check_span_invariants(f.sim.obs().spans);
    for (const auto& [r, at] : f.committed_at) {
      check_exact_attribution(f.sim.obs().spans, r, f.started_at[r], at);
    }
  }
}

TEST(SpanInvariants, HoldUnderChaosPlanAndAmbientFaults) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    net::LinkFaults faults;
    faults.drop_prob = 0.1;
    faults.duplicate_prob = 0.1;
    RoundFixture f(seed, faults);
    // ChaosPlan: a follower dies mid share phase (in-flight messages to
    // it abort their link spans) and returns for the next round.
    chaos::ChaosPlan plan;
    plan.crash_at(40 * kMillisecond, 4);
    plan.restart_at(1500 * kMillisecond, 4);
    chaos::ChaosEngine engine(f.net, std::move(plan));
    engine.start();
    f.run_rounds(2);
    check_span_invariants(f.sim.obs().spans);
    for (const auto& [r, at] : f.committed_at) {
      check_exact_attribution(f.sim.obs().spans, r, f.started_at[r], at);
    }
  }
}

// --- determinism + flight recorder over the soak harness --------------------

chaos::ChaosSoakConfig span_soak_config(std::uint64_t seed) {
  chaos::ChaosSoakConfig cfg;
  cfg.peers = 6;
  cfg.groups = 2;
  cfg.rounds = 4;
  cfg.dim = 4;
  cfg.seed = seed;
  cfg.round_interval = 1 * kSecond;
  cfg.capture_spans = true;
  return cfg;
}

TEST(SpanDeterminism, FaultFreeTwoSubgroupRoundIsByteIdentical) {
  const chaos::ChaosSoakConfig cfg = span_soak_config(11);
  const chaos::ChaosSoakResult a = run_chaos_soak(cfg);
  const chaos::ChaosSoakResult b = run_chaos_soak(cfg);
  ASSERT_FALSE(a.spans_jsonl.empty());
  EXPECT_EQ(a.spans_jsonl, b.spans_jsonl);
  ASSERT_EQ(a.critical_paths.size(), b.critical_paths.size());
  ASSERT_GT(a.critical_paths.size(), 0u);
  for (std::size_t i = 0; i < a.critical_paths.size(); ++i) {
    EXPECT_EQ(critical_path_table(a.critical_paths[i]),
              critical_path_table(b.critical_paths[i]));
    SimDuration phase_sum = 0;
    for (const auto& [phase, d] : a.critical_paths[i].phase_totals) {
      phase_sum += d;
    }
    EXPECT_EQ(phase_sum, a.critical_paths[i].total());
  }
}

TEST(SpanDeterminism, LeaderCrashRoundIsByteIdenticalAndSumsExactly) {
  // Churn crashes leaders too (the soak re-derives leadership from
  // liveness each round); attribution of the surviving commits must stay
  // exact and reproducible.
  chaos::ChaosSoakConfig cfg = span_soak_config(7);
  cfg.rounds = 6;
  cfg.net.faults.drop_prob = 0.05;
  cfg.churn_mttf = 2 * kSecond;
  cfg.churn_mttr = 700 * kMillisecond;
  const chaos::ChaosSoakResult a = run_chaos_soak(cfg);
  const chaos::ChaosSoakResult b = run_chaos_soak(cfg);
  EXPECT_GT(a.crashes, 0u);
  ASSERT_FALSE(a.spans_jsonl.empty());
  EXPECT_EQ(a.spans_jsonl, b.spans_jsonl);
  ASSERT_EQ(a.critical_paths.size(), b.critical_paths.size());
  ASSERT_GT(a.critical_paths.size(), 0u);
  for (std::size_t i = 0; i < a.critical_paths.size(); ++i) {
    EXPECT_EQ(critical_path_table(a.critical_paths[i]),
              critical_path_table(b.critical_paths[i]));
    SimDuration phase_sum = 0;
    for (const auto& [phase, d] : a.critical_paths[i].phase_totals) {
      phase_sum += d;
    }
    EXPECT_EQ(phase_sum, a.critical_paths[i].total());
  }
}

TEST(FlightRecorder, AbortedChaosRoundEmitsPostmortem) {
  // Heavy loss + churn: some round must abort, and the flight recorder
  // dumps its retained spans (unfinished work first) the moment
  // on_round_aborted fires.
  chaos::ChaosSoakConfig cfg;
  cfg.peers = 12;
  cfg.groups = 3;
  cfg.rounds = 8;
  cfg.dim = 4;
  cfg.seed = 5;
  cfg.round_interval = 2 * kSecond;
  cfg.capture_spans = true;
  cfg.net.faults.drop_prob = 0.3;
  cfg.churn_mttf = 400 * kMillisecond;
  cfg.churn_mttr = 3 * kSecond;
  const chaos::ChaosSoakResult res = run_chaos_soak(cfg);
  ASSERT_GT(res.rounds_aborted, 0u);
  ASSERT_FALSE(res.postmortems.empty());
  for (const auto& pm : res.postmortems) {
    EXPECT_GT(pm.round, 0u);
    EXPECT_FALSE(pm.jsonl.empty()) << "round " << pm.round;
    EXPECT_NE(pm.table.find("post-mortem"), std::string::npos)
        << "round " << pm.round;
  }
}

}  // namespace
}  // namespace p2pfl::obs
