// Log compaction and InstallSnapshot (§7 of the Raft paper), as used to
// keep the two-layer system's config logs bounded over long FL runs.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "raft/node.hpp"

namespace p2pfl::raft {
namespace {

// --- RaftLog-level compaction --------------------------------------------------

TEST(RaftLogCompaction, CompactDiscardsPrefixKeepsIndices) {
  RaftLog log;
  for (Term t = 1; t <= 5; ++t) log.append(LogEntry{t, EntryKind::kCommand, {static_cast<std::uint8_t>(t)}});
  log.compact_to(3);
  EXPECT_EQ(log.snapshot_index(), 3u);
  EXPECT_EQ(log.snapshot_term(), 3u);
  EXPECT_EQ(log.first_index(), 4u);
  EXPECT_EQ(log.last_index(), 5u);
  EXPECT_EQ(log.term_at(3), 3u);  // boundary still answers
  EXPECT_EQ(log.at(4).term, 4u);
  EXPECT_EQ(log.term_at(5), 5u);
  EXPECT_THROW(log.at(3), std::logic_error);
}

TEST(RaftLogCompaction, CompactAllLeavesEmptyTail) {
  RaftLog log;
  for (Term t = 1; t <= 3; ++t) log.append(LogEntry{t, EntryKind::kCommand, {}});
  log.compact_to(3);
  EXPECT_EQ(log.last_index(), 3u);
  EXPECT_EQ(log.last_term(), 3u);
  EXPECT_TRUE(log.slice(1, 10).empty());
  // Appending continues seamlessly.
  log.append(LogEntry{4, EntryKind::kCommand, {}});
  EXPECT_EQ(log.last_index(), 4u);
  EXPECT_EQ(log.at(4).term, 4u);
}

TEST(RaftLogCompaction, RepeatedAndStaleCompactionsAreIdempotent) {
  RaftLog log;
  for (Term t = 1; t <= 4; ++t) log.append(LogEntry{t, EntryKind::kCommand, {}});
  log.compact_to(2);
  log.compact_to(2);  // no-op
  log.compact_to(1);  // stale: already compacted past it
  EXPECT_EQ(log.snapshot_index(), 2u);
  EXPECT_EQ(log.last_index(), 4u);
}

TEST(RaftLogCompaction, InstallSnapshotResetsEverything) {
  RaftLog log;
  for (Term t = 1; t <= 3; ++t) log.append(LogEntry{t, EntryKind::kCommand, {}});
  log.install_snapshot(10, 7);
  EXPECT_EQ(log.last_index(), 10u);
  EXPECT_EQ(log.last_term(), 7u);
  EXPECT_EQ(log.snapshot_index(), 10u);
  EXPECT_TRUE(log.latest_config_index() == std::nullopt);
}

// --- node-level snapshot flow -----------------------------------------------------

struct SnapCluster {
  explicit SnapCluster(std::size_t n, RaftOptions opts,
                       std::uint64_t seed = 42)
      : sim(seed), net(sim, {.base_latency = 15 * kMillisecond}) {
    std::vector<PeerId> members;
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<PeerId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(static_cast<PeerId>(i), hosts.back().get());
      nodes.push_back(std::make_unique<RaftNode>(
          static_cast<PeerId>(i), "raft/snap", members, opts, net,
          *hosts[i]));
      RaftNode* node = nodes.back().get();
      // State machine: running sum of command bytes, snapshot = the sum.
      node->on_apply = [this, i](Index, const LogEntry& e) {
        for (std::uint8_t b : e.data) sums[i] += b;
      };
      node->on_snapshot_save = [this, i] {
        ByteWriter w;
        w.u64(sums[i]);
        return w.take();
      };
      node->on_snapshot_install = [this, i](Index, const Bytes& state) {
        ByteReader r(state);
        sums[i] = r.u64();
        ++installs[i];
      };
      node->start();
    }
  }

  RaftNode* leader() {
    for (auto& n : nodes) {
      if (n->is_leader() && !net.crashed(n->id())) return n.get();
    }
    return nullptr;
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<RaftNode>> nodes;
  std::map<std::size_t, std::uint64_t> sums;
  std::map<std::size_t, int> installs;
};

TEST(RaftSnapshot, AutoCompactionBoundsTheLog) {
  RaftOptions opts;
  opts.compaction_threshold = 10;
  SnapCluster c(3, opts);
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (std::uint8_t i = 0; i < 40; ++i) {
    leader->propose(Bytes{1});
    c.sim.run_for(60 * kMillisecond);
  }
  c.sim.run_for(1 * kSecond);
  EXPECT_GT(leader->snapshot_index(), 20u);
  EXPECT_LE(leader->last_log_index() - leader->snapshot_index(), 15u);
  // Every node applied all 40 increments exactly once.
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(c.sums[i], 40u);
}

TEST(RaftSnapshot, LaggingFollowerCatchesUpViaInstallSnapshot) {
  RaftOptions opts;
  SnapCluster c(3, opts);
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  // Crash one follower, commit a batch, compact it away on the leader.
  PeerId lagging = kNoPeer;
  for (auto& n : c.nodes) {
    if (n.get() != leader) lagging = n->id();
  }
  c.net.crash(lagging);
  c.nodes[lagging]->stop();
  for (std::uint8_t i = 0; i < 20; ++i) {
    leader->propose(Bytes{2});
    c.sim.run_for(60 * kMillisecond);
  }
  c.sim.run_for(500 * kMillisecond);
  leader->compact();
  ASSERT_GT(leader->snapshot_index(), 0u);
  // Let pre-compaction heartbeats still in flight drain (they would
  // otherwise catch the follower up via plain AppendEntries).
  c.sim.run_for(100 * kMillisecond);

  // The restarted follower's log is far behind the snapshot: the leader
  // must ship InstallSnapshot, then stream the tail.
  c.net.restore(lagging);
  c.sums[lagging] = 0;
  c.nodes[lagging]->restart();
  leader->propose(Bytes{3});
  c.sim.run_for(3 * kSecond);
  EXPECT_GE(c.installs[lagging], 1);
  EXPECT_EQ(c.sums[lagging], 20u * 2 + 3);
  EXPECT_EQ(c.nodes[lagging]->commit_index(), leader->commit_index());
}

TEST(RaftSnapshot, RestartRestoresStateMachineFromSnapshot) {
  RaftOptions opts;
  opts.compaction_threshold = 5;
  SnapCluster c(3, opts);
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  for (std::uint8_t i = 0; i < 12; ++i) {
    leader->propose(Bytes{1});
    c.sim.run_for(60 * kMillisecond);
  }
  c.sim.run_for(500 * kMillisecond);
  const PeerId id = leader->id();
  c.net.crash(id);
  leader->stop();
  c.sums[id] = 0;  // simulate process restart losing volatile state
  c.net.restore(id);
  c.nodes[id]->restart();
  c.sim.run_for(2 * kSecond);
  // Snapshot restore + log-tail replay reconstructs the full sum.
  EXPECT_EQ(c.sums[id], 12u);
}

TEST(RaftSnapshot, MembershipSurvivesInsideSnapshot) {
  // Add a server, compact past the config entry, then bring up a fresh
  // lagging node: it must learn the 4-member config from the snapshot.
  RaftOptions opts;
  SnapCluster c(3, opts);
  // Fourth node, not in the initial config.
  c.hosts.push_back(std::make_unique<net::PeerHost>());
  c.net.attach(3, c.hosts.back().get());
  std::vector<PeerId> members{0, 1, 2};
  c.nodes.push_back(std::make_unique<RaftNode>(
      3, "raft/snap", members, opts, c.net, *c.hosts[3]));
  c.sim.run_for(2 * kSecond);
  RaftNode* leader = c.leader();
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(leader->propose_add_server(3).has_value());
  c.sim.run_for(1 * kSecond);
  leader->propose(Bytes{1});
  c.sim.run_for(500 * kMillisecond);
  leader->compact();
  ASSERT_TRUE(leader->log().latest_config_index() == std::nullopt);
  EXPECT_EQ(leader->members().size(), 4u);  // from the snapshot fallback

  // Node 3 starts from nothing and receives the snapshot.
  c.nodes[3]->start();
  c.sim.run_for(2 * kSecond);
  EXPECT_TRUE(c.nodes[3]->in_config());
  EXPECT_EQ(c.nodes[3]->members().size(), 4u);
}

}  // namespace
}  // namespace p2pfl::raft
