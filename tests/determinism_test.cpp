// Whole-stack determinism: identical seeds must give bit-identical
// protocol histories — the property that makes every experiment in this
// repo replayable and every failure seed debuggable.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/fl_experiment.hpp"
#include "core/two_layer_raft.hpp"
#include "obs/export.hpp"

namespace p2pfl {
namespace {

struct RaftTrace {
  std::vector<std::tuple<SimTime, SubgroupId, PeerId>> sub_elections;
  std::vector<std::pair<SimTime, PeerId>> fed_elections;
  PeerId final_fed = kNoPeer;
  std::vector<PeerId> final_members;
};

RaftTrace run_raft_trace(std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  core::TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 50 * kMillisecond;
  opts.raft.election_timeout_max = 100 * kMillisecond;
  core::TwoLayerRaftSystem sys(core::Topology::even(12, 4), opts, net);
  RaftTrace t;
  sys.on_subgroup_leader = [&](SubgroupId g, PeerId p) {
    t.sub_elections.emplace_back(sim.now(), g, p);
  };
  sys.on_fedavg_leader = [&](PeerId p) {
    t.fed_elections.emplace_back(sim.now(), p);
  };
  sys.start_all();
  sim.run_for(3 * kSecond);
  // Crash the FedAvg leader mid-way for extra nondeterminism surface.
  const PeerId fed = sys.fedavg_leader();
  if (fed != kNoPeer) sys.crash_peer(fed);
  sim.run_for(3 * kSecond);
  t.final_fed = sys.fedavg_leader();
  t.final_members = sys.fedavg_members();
  return t;
}

TEST(Determinism, TwoLayerRaftTimelineIsSeedExact) {
  const RaftTrace a = run_raft_trace(2024);
  const RaftTrace b = run_raft_trace(2024);
  EXPECT_EQ(a.sub_elections, b.sub_elections);
  EXPECT_EQ(a.fed_elections, b.fed_elections);
  EXPECT_EQ(a.final_fed, b.final_fed);
  EXPECT_EQ(a.final_members, b.final_members);
}

TEST(Determinism, DifferentSeedsGiveDifferentTimelines) {
  const RaftTrace a = run_raft_trace(1);
  const RaftTrace b = run_raft_trace(2);
  // Same topology, different randomized timeouts: the election
  // timestamps will differ even if the same peers happen to win.
  EXPECT_NE(a.sub_elections, b.sub_elections);
}

/// Serialized observability artifacts for one fully traced run of the
/// RaftTrace scenario: (metrics JSONL, Chrome trace JSON).
std::pair<std::string, std::string> run_golden_trace(std::uint64_t seed) {
  sim::Simulator sim(seed);
  sim.obs().trace.set_enabled(true);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  core::TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 50 * kMillisecond;
  opts.raft.election_timeout_max = 100 * kMillisecond;
  core::TwoLayerRaftSystem sys(core::Topology::even(12, 4), opts, net);
  sys.start_all();
  sim.run_for(3 * kSecond);
  const PeerId fed = sys.fedavg_leader();
  if (fed != kNoPeer) sys.crash_peer(fed);
  sim.run_for(3 * kSecond);
  return {obs::metrics_jsonl(sim.obs().metrics),
          obs::chrome_trace_json(sim.obs().trace)};
}

TEST(Determinism, GoldenTraceIsByteIdenticalAcrossRuns) {
  const auto a = run_golden_trace(4242);
  const auto b = run_golden_trace(4242);
  // Byte-for-byte: the trace embeds only virtual timestamps and the
  // export formats every number identically, so two runs with the same
  // seed must serialize to the same file content.
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  // The run actually recorded protocol activity on all layers.
  EXPECT_NE(a.second.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(a.second.find("\"cat\":\"raft\""), std::string::npos);
  EXPECT_NE(a.second.find("raft.leader_elected"), std::string::npos);
  EXPECT_NE(a.first.find("raft.elections_won"), std::string::npos);
}

TEST(Determinism, GoldenTraceDiffersAcrossSeeds) {
  const auto a = run_golden_trace(1);
  const auto b = run_golden_trace(2);
  EXPECT_NE(a.second, b.second);
}

/// FNV-1a 64-bit, used to pin serialized artifacts without embedding
/// the full byte stream in the test source.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed-seed 2-subgroup scenario for the kernel event-order golden:
/// both Raft layers electing, heartbeating and recovering from a FedAvg
/// leader crash — every event class (election timers, heartbeats, link
/// deliveries) crosses the simulator queue.
std::pair<std::string, std::string> run_kernel_golden() {
  sim::Simulator sim(90210);
  sim.obs().trace.set_enabled(true);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  core::TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 50 * kMillisecond;
  opts.raft.election_timeout_max = 100 * kMillisecond;
  core::TwoLayerRaftSystem sys(core::Topology::even(10, 2), opts, net);
  sys.start_all();
  sim.run_for(3 * kSecond);
  const PeerId fed = sys.fedavg_leader();
  if (fed != kNoPeer) sys.crash_peer(fed);
  sim.run_for(3 * kSecond);
  return {obs::metrics_jsonl(sim.obs().metrics),
          obs::chrome_trace_json(sim.obs().trace)};
}

// Captured on the pre-refactor binary-heap + tombstone kernel (commit
// 3137914 lineage) before the pooled timer-wheel kernel replaced it.
// The swap must preserve the exact (time, insertion-seq) firing order,
// so this run's serialized metrics and trace must stay byte-identical.
inline constexpr std::size_t kGoldenMetricsLen = 4153;
inline constexpr std::uint64_t kGoldenMetricsHash = 6843579532486980710ull;
inline constexpr std::size_t kGoldenTraceLen = 1831580;
inline constexpr std::uint64_t kGoldenTraceHash = 5016380517358984212ull;

TEST(Determinism, KernelEventOrderMatchesPreWheelGolden) {
  const auto [metrics, trace] = run_kernel_golden();
  EXPECT_EQ(metrics.size(), kGoldenMetricsLen);
  EXPECT_EQ(fnv1a64(metrics), kGoldenMetricsHash);
  EXPECT_EQ(trace.size(), kGoldenTraceLen);
  EXPECT_EQ(fnv1a64(trace), kGoldenTraceHash);
}

TEST(Determinism, FlExperimentBitExactAcrossRuns) {
  core::FlExperimentConfig cfg;
  cfg.peers = 6;
  cfg.group_size = 3;
  cfg.rounds = 6;
  cfg.eval_every = 2;
  cfg.data.height = 8;
  cfg.data.width = 8;
  cfg.data.train_samples = 240;
  cfg.data.test_samples = 60;
  cfg.seed = 77;
  const auto a = core::run_fl_experiment(cfg);
  const auto b = core::run_fl_experiment(cfg);
  EXPECT_EQ(a.final_weights, b.final_weights);  // bit-identical weights
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].train_loss, b.records[i].train_loss);
    EXPECT_EQ(a.records[i].test_accuracy, b.records[i].test_accuracy);
  }
}

TEST(Determinism, FlExperimentSeedChangesWeights) {
  core::FlExperimentConfig cfg;
  cfg.peers = 4;
  cfg.group_size = 2;
  cfg.rounds = 3;
  cfg.data.height = 8;
  cfg.data.width = 8;
  cfg.data.train_samples = 120;
  cfg.data.test_samples = 40;
  cfg.seed = 1;
  const auto a = core::run_fl_experiment(cfg);
  cfg.seed = 2;
  const auto b = core::run_fl_experiment(cfg);
  EXPECT_NE(a.final_weights, b.final_weights);
}

}  // namespace
}  // namespace p2pfl
