// Randomized fault-injection ("chaos") tests for the Raft substrate.
//
// Long simulated runs with random crashes, restarts and link blocks,
// while continuously checking the Raft paper's safety properties:
//   * Election Safety  — at most one leader per term;
//   * Log Matching     — equal (index, term) implies equal prefixes;
//   * Leader Completeness / State-Machine Safety — applied sequences of
//     any two nodes are prefixes of each other, and committed entries
//     are never lost.
// Seeds are parameterized so one failure is replayable exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rng.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "raft/node.hpp"

namespace p2pfl::raft {
namespace {

class ChaosCluster {
 public:
  ChaosCluster(std::size_t n, std::uint64_t seed,
               net::NetworkConfig net_cfg = {.base_latency =
                                                 15 * kMillisecond})
      : sim_(seed), net_(sim_, net_cfg), chaos_rng_(seed ^ 0xc4a05ULL) {
    RaftOptions opts;
    opts.election_timeout_min = 100 * kMillisecond;
    opts.election_timeout_max = 200 * kMillisecond;
    std::vector<PeerId> members;
    for (std::size_t i = 0; i < n; ++i) members.push_back(static_cast<PeerId>(i));
    for (std::size_t i = 0; i < n; ++i) {
      hosts_.push_back(std::make_unique<net::PeerHost>());
      net_.attach(static_cast<PeerId>(i), hosts_.back().get());
      nodes_.push_back(std::make_unique<RaftNode>(
          static_cast<PeerId>(i), "raft/chaos", members, opts, net_,
          *hosts_[i]));
      RaftNode* node = nodes_.back().get();
      node->on_apply = [this, i](Index idx, const LogEntry& e) {
        applied_[i].emplace_back(idx, e.data);
      };
      node->on_become_leader = [this, node] {
        auto [it, fresh] = leaders_by_term_.emplace(node->current_term(),
                                                    node->id());
        EXPECT_TRUE(fresh || it->second == node->id())
            << "two leaders elected in term " << node->current_term();
      };
      node->start();
    }
  }

  /// Like run_chaos, but the leader also cycles membership: it removes a
  /// random other member and adds it back a few ticks later.
  void run_membership_churn(SimDuration total, double change_p) {
    std::uint8_t next_cmd = 0;
    PeerId parked = kNoPeer;  // currently removed member
    int park_ticks = 0;
    const SimTime end = sim_.now() + total;
    while (sim_.now() < end) {
      sim_.run_for(50 * kMillisecond);
      RaftNode* leader = live_leader();
      if (leader != nullptr) {
        leader->propose(Bytes{next_cmd++});
        if (parked == kNoPeer && chaos_rng_.chance(change_p)) {
          // Remove a random other member.
          std::vector<PeerId> others;
          for (PeerId m : leader->members()) {
            if (m != leader->id()) others.push_back(m);
          }
          if (others.size() + 1 > 2) {  // keep at least a pair
            const PeerId victim = others[chaos_rng_.index(others.size())];
            if (leader->propose_remove_server(victim)) {
              parked = victim;
              park_ticks = 0;
            }
          }
        } else if (parked != kNoPeer && ++park_ticks > 5) {
          if (leader->propose_add_server(parked)) parked = kNoPeer;
        }
      }
      check_safety();
    }
    // Re-admit whoever is still parked and settle.
    for (int i = 0; i < 100 && parked != kNoPeer; ++i) {
      sim_.run_for(100 * kMillisecond);
      RaftNode* leader = live_leader();
      if (leader != nullptr && leader->propose_add_server(parked)) {
        parked = kNoPeer;
      }
    }
    sim_.run_for(3 * kSecond);
    check_safety();
  }

  void run_chaos(SimDuration total, double crash_p, double restart_p) {
    std::uint8_t next_cmd = 0;
    const SimTime end = sim_.now() + total;
    while (sim_.now() < end) {
      sim_.run_for(50 * kMillisecond);

      // A live leader keeps proposing work.
      for (auto& n : nodes_) {
        if (n->is_leader() && !net_.crashed(n->id())) {
          n->propose(Bytes{next_cmd++});
          break;
        }
      }
      // Random crashes, bounded to a minority so progress stays possible
      // most of the time.
      if (chaos_rng_.chance(crash_p) &&
          crashed_.size() < nodes_.size() / 2) {
        const PeerId victim =
            static_cast<PeerId>(chaos_rng_.index(nodes_.size()));
        if (crashed_.insert(victim).second) {
          net_.crash(victim);
          nodes_[victim]->stop();
        }
      }
      // Random restarts.
      if (!crashed_.empty() && chaos_rng_.chance(restart_p)) {
        const PeerId back = *crashed_.begin();
        crashed_.erase(back);
        net_.restore(back);
        applied_[back].clear();  // restart replays from scratch
        nodes_[back]->restart();
      }
      check_safety();
    }
    // Heal everything and let the cluster converge.
    for (PeerId p : crashed_) {
      net_.restore(p);
      applied_[p].clear();
      nodes_[p]->restart();
    }
    crashed_.clear();
    sim_.run_for(3 * kSecond);
    check_safety();
  }

  void check_safety() {
    // Log Matching across every live pair.
    for (std::size_t a = 0; a < nodes_.size(); ++a) {
      for (std::size_t b = a + 1; b < nodes_.size(); ++b) {
        const RaftLog& la = nodes_[a]->log();
        const RaftLog& lb = nodes_[b]->log();
        const Index common = std::min(la.last_index(), lb.last_index());
        // Find the highest common index with equal terms; everything at
        // or below it must match exactly.
        for (Index i = common; i >= 1; --i) {
          if (la.term_at(i) == lb.term_at(i)) {
            for (Index j = i; j >= 1; --j) {
              ASSERT_TRUE(la.at(j) == lb.at(j))
                  << "log divergence below matching (index " << i
                  << ", nodes " << a << "," << b << ")";
            }
            break;
          }
        }
      }
    }
    // State-Machine Safety: applied sequences are prefix-compatible.
    for (std::size_t a = 0; a < nodes_.size(); ++a) {
      for (std::size_t b = a + 1; b < nodes_.size(); ++b) {
        const auto& sa = applied_[a];
        const auto& sb = applied_[b];
        const std::size_t common = std::min(sa.size(), sb.size());
        for (std::size_t i = 0; i < common; ++i) {
          ASSERT_EQ(sa[i], sb[i])
              << "state machines diverged at applied entry " << i;
        }
      }
    }
  }

  std::size_t total_applied() const {
    std::size_t best = 0;
    for (const auto& [i, seq] : applied_) best = std::max(best, seq.size());
    return best;
  }

  bool has_leader() const {
    for (const auto& n : nodes_) {
      if (n->is_leader() && !net_.crashed(n->id())) return true;
    }
    return false;
  }

  RaftNode* live_leader() {
    for (auto& n : nodes_) {
      if (n->is_leader() && !net_.crashed(n->id())) return n.get();
    }
    return nullptr;
  }

  std::size_t member_count() {
    RaftNode* l = live_leader();
    return l == nullptr ? 0 : l->members().size();
  }

  sim::Simulator& sim() { return sim_; }

 private:
  sim::Simulator sim_;
  net::Network net_;
  Rng chaos_rng_;
  std::vector<std::unique_ptr<net::PeerHost>> hosts_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::map<std::size_t, std::vector<std::pair<Index, Bytes>>> applied_;
  std::map<Term, PeerId> leaders_by_term_;
  std::set<PeerId> crashed_;
};

class RaftChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaftChaos, SafetyHoldsUnderRandomCrashesFiveNodes) {
  ChaosCluster c(5, GetParam());
  c.run_chaos(30 * kSecond, /*crash_p=*/0.15, /*restart_p=*/0.2);
  EXPECT_TRUE(c.has_leader());
  EXPECT_GT(c.total_applied(), 20u) << "cluster made too little progress";
}

TEST_P(RaftChaos, SafetyHoldsUnderHeavyChurnSevenNodes) {
  ChaosCluster c(7, GetParam() ^ 0x77);
  c.run_chaos(20 * kSecond, /*crash_p=*/0.3, /*restart_p=*/0.35);
  EXPECT_TRUE(c.has_leader());
  EXPECT_GT(c.total_applied(), 5u);
}

TEST_P(RaftChaos, MetricInvariantsHoldUnderCrashRestartChaos) {
  ChaosCluster c(5, GetParam());
  c.sim().obs().trace.set_enabled(true);
  c.sim().obs().trace.enable_category("raft");
  c.run_chaos(20 * kSecond, /*crash_p=*/0.15, /*restart_p=*/0.2);
  const obs::MetricsRegistry& m = c.sim().obs().metrics;

  // A campaign can fail (split vote, lost to a crash) but never produce
  // more than one win; winning requires having campaigned.
  const auto& counters = m.counters();
  const std::uint64_t started = counters.at("raft.elections_started").value();
  const std::uint64_t won = counters.at("raft.elections_won").value();
  EXPECT_GE(started, won);
  EXPECT_GE(won, 1u);

  // Election Safety, independently of the on_become_leader callbacks:
  // the trace stream records exactly one leader_elected per term.
  std::set<std::string> terms_with_leader;
  std::uint64_t elected_events = 0;
  for (const obs::TraceEvent& ev : c.sim().obs().trace.events()) {
    if (ev.name != "raft.leader_elected") continue;
    ++elected_events;
    std::string term;
    for (const auto& [key, value] : ev.args) {
      if (key == "term") term = value.json;
    }
    EXPECT_TRUE(terms_with_leader.insert(term).second)
        << "two leaders elected in term " << term;
  }
  EXPECT_EQ(elected_events, won);

  // run_chaos healed every crash and settled: one live leader remains
  // and every stale leader has stepped down, so the gauge reads 1.
  ASSERT_TRUE(c.has_leader());
  EXPECT_EQ(m.gauges().at("raft.leaders.raft/chaos").value(), 1);
}

net::NetworkConfig lossy_net(double drop, double dup) {
  net::NetworkConfig cfg{.base_latency = 15 * kMillisecond};
  cfg.faults.drop_prob = drop;
  cfg.faults.duplicate_prob = dup;
  cfg.faults.reorder_prob = 0.1;
  cfg.faults.reorder_jitter = 100 * kMillisecond;
  return cfg;
}

/// Loss makes a leaderless instant at the chaos end possible (an
/// election may be in flight); allow a bounded re-election window
/// before asserting liveness.
void settle_leader(ChaosCluster& c) {
  for (int i = 0; i < 100 && !c.has_leader(); ++i) {
    c.sim().run_for(100 * kMillisecond);
  }
}

TEST_P(RaftChaos, SafetyHoldsOnLossyDuplicatingNetwork) {
  // 10% loss + 5% duplication + reordering, on top of crash/restart
  // churn: elections retry until quorums form, but Election Safety and
  // Log Matching must hold through every dropped or doubled message.
  ChaosCluster c(5, GetParam() ^ 0x1055, lossy_net(0.10, 0.05));
  c.run_chaos(30 * kSecond, /*crash_p=*/0.1, /*restart_p=*/0.2);
  settle_leader(c);
  EXPECT_TRUE(c.has_leader());
  c.check_safety();
  EXPECT_GT(c.total_applied(), 10u) << "cluster made too little progress";
}

TEST_P(RaftChaos, SafetyHoldsUnderHeavyLoss) {
  // 20% loss: commit progress slows dramatically (AppendEntries and
  // their acks both die), but nothing committed may ever be lost.
  ChaosCluster c(5, GetParam() ^ 0x2055, lossy_net(0.20, 0.10));
  c.run_chaos(20 * kSecond, /*crash_p=*/0.05, /*restart_p=*/0.2);
  settle_leader(c);
  EXPECT_TRUE(c.has_leader());
  c.check_safety();
  EXPECT_GT(c.total_applied(), 3u);
}

TEST_P(RaftChaos, MembershipChurnPreservesSafety) {
  ChaosCluster c(5, GetParam() ^ 0x3333);
  c.run_membership_churn(20 * kSecond, /*change_p=*/0.2);
  ASSERT_NE(c.live_leader(), nullptr);
  EXPECT_EQ(c.member_count(), 5u) << "everyone re-admitted";
  EXPECT_GT(c.total_applied(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftChaos,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace p2pfl::raft
