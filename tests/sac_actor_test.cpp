#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "secagg/sac_actor.hpp"

namespace p2pfl::secagg {
namespace {

// A subgroup of SacPeer actors over a simulated network.
struct SacNet {
  explicit SacNet(std::size_t n, SacActorOptions opts, std::uint64_t seed = 5)
      : sim(seed), net(sim, {.base_latency = 15 * kMillisecond}) {
    for (PeerId id = 0; id < n; ++id) {
      group.push_back(id);
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(id, hosts.back().get());
      peers.push_back(std::make_unique<SacPeer>(id, "sac/test", opts, net,
                                                *hosts.back()));
      SacPeer* p = peers.back().get();
      p->on_complete = [this, id](RoundId r, const Vector& avg) {
        results[id] = std::make_pair(r, avg);
      };
      p->on_unrecoverable = [this, id](RoundId) { unrecoverable.insert(id); };
    }
  }

  /// All peers contribute v_i = (i+1) * ones; expected average is
  /// (n+1)/2 * ones.
  void begin(RoundId round, std::size_t leader_pos,
             std::size_t dim = 8) {
    for (PeerId id = 0; id < peers.size(); ++id) {
      Vector v(dim, static_cast<float>(id + 1));
      peers[id]->begin_round(round, std::move(v), group, leader_pos);
    }
  }

  float expected_mean() const {
    return static_cast<float>(peers.size() + 1) / 2.0f;
  }

  sim::Simulator sim;
  net::Network net;
  std::vector<PeerId> group;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<SacPeer>> peers;
  std::map<PeerId, std::pair<RoundId, Vector>> results;
  std::set<PeerId> unrecoverable;
};

TEST(SacActor, LeaderCollectComputesAverage) {
  SacActorOptions opts;  // n-out-of-n, leader collect
  SacNet s(5, opts);
  s.begin(1, 2);
  s.sim.run();
  ASSERT_EQ(s.results.size(), 1u);  // only the leader completes
  ASSERT_TRUE(s.results.count(2));
  for (float v : s.results[2].second) {
    EXPECT_NEAR(v, s.expected_mean(), 1e-4f);
  }
}

TEST(SacActor, BroadcastModeCompletesOnEveryPeer) {
  SacActorOptions opts;
  opts.broadcast_subtotals = true;  // Alg. 2
  SacNet s(4, opts);
  s.begin(1, 0);
  s.sim.run();
  ASSERT_EQ(s.results.size(), 4u);
  for (const auto& [id, r] : s.results) {
    for (float v : r.second) EXPECT_NEAR(v, s.expected_mean(), 1e-4f);
  }
}

TEST(SacActor, BroadcastCostIs2NNminus1) {
  SacActorOptions opts;
  opts.broadcast_subtotals = true;
  opts.wire_bytes_per_share = 1000;
  const std::size_t n = 6;
  SacNet s(n, opts);
  s.begin(1, 0);
  s.sim.run();
  EXPECT_EQ(s.net.stats().sent.payload, 2u * n * (n - 1) * 1000u);
}

TEST(SacActor, LeaderCollectCostIsN2Minus1) {
  SacActorOptions opts;
  opts.wire_bytes_per_share = 1000;
  const std::size_t n = 6;
  SacNet s(n, opts);
  s.begin(1, 3);
  s.sim.run();
  EXPECT_EQ(s.net.stats().sent.payload, (n * n - 1) * 1000u);
}

TEST(SacActor, FaultTolerantCostMatchesAnalysis) {
  // k-out-of-n: n(n-1)(n-k+1) shares + (k-1) subtotals.
  for (std::size_t n : {3u, 5u}) {
    for (std::size_t k = 2; k <= n; ++k) {
      SacActorOptions opts;
      opts.k = k;
      opts.wire_bytes_per_share = 1000;
      SacNet s(n, opts);
      s.begin(1, 0);
      s.sim.run();
      const std::uint64_t expected =
          (n * (n - 1) * (n - k + 1) + (k - 1)) * 1000u;
      EXPECT_EQ(s.net.stats().sent.payload, expected)
          << "n=" << n << " k=" << k;
      ASSERT_TRUE(s.results.count(0)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(SacActor, Fig3ScenarioPeerDropsAfterSharing) {
  // 2-out-of-3 SAC; one non-leader peer crashes right after its shares
  // leave; the remaining two still recover the average of ALL THREE
  // models via the replicated subtotals.
  SacActorOptions opts;
  opts.k = 2;
  opts.subtotal_timeout = 100 * kMillisecond;
  SacNet s(3, opts);
  s.begin(1, 0);
  // Shares depart instantly at begin_round; crash "Alice" (peer 2) while
  // they are in flight.
  s.sim.run_for(1 * kMillisecond);
  s.net.crash(2);
  s.peers[2]->halt();
  s.sim.run_for(5 * kSecond);
  ASSERT_TRUE(s.results.count(0));
  for (float v : s.results[0].second) {
    EXPECT_NEAR(v, s.expected_mean(), 1e-4f);  // all 3 models included
  }
}

TEST(SacActor, RecoversFromMaximumTolerableDropouts) {
  // 2-out-of-5: up to three peers may vanish after the share phase.
  SacActorOptions opts;
  opts.k = 2;
  opts.subtotal_timeout = 100 * kMillisecond;
  SacNet s(5, opts);
  s.begin(1, 0);
  s.sim.run_for(1 * kMillisecond);
  for (PeerId dead : {1u, 2u, 4u}) {
    s.net.crash(dead);
    s.peers[dead]->halt();
  }
  s.sim.run_for(10 * kSecond);
  ASSERT_TRUE(s.results.count(0));
  for (float v : s.results[0].second) {
    EXPECT_NEAR(v, s.expected_mean(), 1e-4f);
  }
}

TEST(SacActor, LeaderReportsShareTimeoutForSilentPeer) {
  SacActorOptions opts;
  opts.share_timeout = 200 * kMillisecond;
  SacNet s(4, opts);
  std::optional<std::vector<std::size_t>> missing;
  s.peers[1]->on_share_timeout = [&](RoundId,
                                     const std::vector<std::size_t>& m) {
    missing = m;
  };
  // Peer 3 crashes before the round starts: its shares never exist.
  s.net.crash(3);
  for (PeerId id : {0u, 1u, 2u}) {
    Vector v(4, static_cast<float>(id + 1));
    s.peers[id]->begin_round(1, std::move(v), s.group, 1);
  }
  s.sim.run_for(2 * kSecond);
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(*missing, (std::vector<std::size_t>{3}));
  EXPECT_TRUE(s.results.empty());  // n-out-of-n cannot proceed (Alg. 2 flaw)
}

TEST(SacActor, UnrecoverableWhenTooManyHoldersDie) {
  // 3-out-of-4: tolerance is one dropout; kill two adjacent holders.
  SacActorOptions opts;
  opts.k = 3;
  opts.subtotal_timeout = 50 * kMillisecond;
  SacNet s(4, opts);
  s.begin(1, 0);
  s.sim.run_for(1 * kMillisecond);
  for (PeerId dead : {1u, 2u}) {
    s.net.crash(dead);
    s.peers[dead]->halt();
  }
  s.sim.run_for(10 * kSecond);
  // Subtotal 2 was held by peers {2, 1} only; the leader must give up.
  EXPECT_TRUE(s.unrecoverable.count(0));
  EXPECT_TRUE(s.results.empty());
}

TEST(SacActor, StaleRoundMessagesIgnoredNewerRoundWins) {
  SacActorOptions opts;
  SacNet s(3, opts);
  s.begin(1, 0);
  s.sim.run_for(1 * kMillisecond);
  // Restart with a newer round before round 1 finishes.
  s.begin(2, 0);
  s.sim.run();
  ASSERT_TRUE(s.results.count(0));
  EXPECT_EQ(s.results[0].first, 2u);
}

TEST(SacActor, EarlySharesAreStashedUntilRoundBegins) {
  SacActorOptions opts;
  SacNet s(3, opts);
  // Peers 1 and 2 start the round; leader 0 lags by one latency.
  for (PeerId id : {1u, 2u}) {
    Vector v(4, static_cast<float>(id + 1));
    s.peers[id]->begin_round(1, std::move(v), s.group, 0);
  }
  s.sim.run_for(40 * kMillisecond);  // their shares reach peer 0 first
  Vector v(4, 1.0f);
  s.peers[0]->begin_round(1, std::move(v), s.group, 0);
  s.sim.run();
  ASSERT_TRUE(s.results.count(0));
  for (float x : s.results[0].second) EXPECT_NEAR(x, 2.0f, 1e-4f);
}

TEST(SacActor, SinglePeerGroupCompletesImmediately) {
  SacActorOptions opts;
  SacNet s(1, opts);
  s.begin(1, 0);
  s.sim.run();
  ASSERT_TRUE(s.results.count(0));
  EXPECT_NEAR(s.results[0].second[0], 1.0f, 1e-6f);
}

TEST(SacActor, PerRoundKOverrideApplies) {
  SacActorOptions opts;  // configured n-out-of-n
  opts.wire_bytes_per_share = 1000;
  SacNet s(4, opts);
  // Override to k=3 for this round: shares per message = n-k+1 = 2.
  for (PeerId id = 0; id < 4; ++id) {
    Vector v(4, static_cast<float>(id + 1));
    s.peers[id]->begin_round(1, std::move(v), s.group, 0, 3);
  }
  s.sim.run();
  const std::uint64_t expected = (4u * 3u * 2u + 2u) * 1000u;
  EXPECT_EQ(s.net.stats().sent.payload, expected);
  ASSERT_TRUE(s.results.count(0));
}

TEST(SacActor, ActorAverageMatchesMathAverage) {
  // The protocol and the math form agree bit-for-bit given one seed for
  // the splits... they use different RNG streams, so compare within FP
  // tolerance instead.
  SacActorOptions opts;
  SacNet s(6, opts, 77);
  s.begin(1, 4);
  s.sim.run();
  ASSERT_TRUE(s.results.count(4));
  for (float v : s.results[4].second) {
    EXPECT_NEAR(v, s.expected_mean(), 1e-3f);
  }
}

}  // namespace
}  // namespace p2pfl::secagg
