#include <gtest/gtest.h>

#include <memory>

#include "core/system.hpp"

namespace p2pfl::core {
namespace {

struct FullSystem {
  FullSystem(std::size_t peers, std::size_t groups, std::uint64_t seed = 3)
      : sim(seed), net(sim, {.base_latency = 15 * kMillisecond}) {
    fl::SyntheticSpec spec;
    spec.height = 8;
    spec.width = 8;
    spec.train_samples = 400;
    spec.test_samples = 120;
    spec.noise_scale = 0.6;
    Rng data_rng(seed);
    data = std::make_unique<fl::TrainTest>(fl::make_synthetic(spec, data_rng));
    parts = fl::partition_iid(data->train, peers, data_rng);

    SystemConfig cfg;
    cfg.raft.raft.election_timeout_min = 50 * kMillisecond;
    cfg.raft.raft.election_timeout_max = 100 * kMillisecond;
    cfg.raft.fedavg_presence_poll = 100 * kMillisecond;
    cfg.round_interval = 1 * kSecond;
    cfg.train_duration = 100 * kMillisecond;
    cfg.learning_rate = 3e-3f;
    cfg.seed = seed;
    sys = std::make_unique<P2pFlSystem>(
        Topology::even(peers, groups), cfg, net, data->train, data->test,
        parts, [] { return fl::Model::mlp(64, {16}); });
  }

  sim::Simulator sim;
  net::Network net;
  std::unique_ptr<fl::TrainTest> data;
  fl::PeerIndices parts;
  std::unique_ptr<P2pFlSystem> sys;
};

TEST(FullSystem, CompletesRoundsAndLearns) {
  FullSystem f(6, 2);
  f.sys->start();
  f.sim.run_for(20 * kSecond);
  EXPECT_GE(f.sys->rounds_completed(), 10u);
  const auto ev = f.sys->evaluate_global();
  EXPECT_GT(ev.accuracy, 0.5);
}

TEST(FullSystem, EveryPeerReceivesTheGlobalModel) {
  FullSystem f(6, 2);
  f.sys->start();
  f.sim.run_for(10 * kSecond);
  ASSERT_GE(f.sys->rounds_completed(), 1u);
  // All peers' latest globals agree (they all got the same broadcast).
  const auto& reference = f.sys->global_model_at(0);
  ASSERT_FALSE(reference.empty());
  for (PeerId p = 1; p < 6; ++p) {
    EXPECT_EQ(f.sys->global_model_at(p), reference) << "peer " << p;
  }
}

TEST(FullSystem, SurvivesSubgroupLeaderCrash) {
  FullSystem f(9, 3);
  f.sys->start();
  f.sim.run_for(8 * kSecond);
  const std::size_t before = f.sys->rounds_completed();
  ASSERT_GE(before, 1u);
  // Crash a subgroup leader that is not the FedAvg leader.
  const PeerId fed = f.sys->raft().fedavg_leader();
  PeerId victim = kNoPeer;
  for (SubgroupId g = 0; g < 3; ++g) {
    const PeerId l = f.sys->raft().subgroup_leader(g);
    if (l != fed) victim = l;
  }
  ASSERT_NE(victim, kNoPeer);
  f.sys->crash_peer(victim);
  f.sim.run_for(15 * kSecond);
  EXPECT_GT(f.sys->rounds_completed(), before + 3)
      << "rounds must keep completing after the crash";
}

TEST(FullSystem, SurvivesFedAvgLeaderCrash) {
  FullSystem f(9, 3, 11);
  f.sys->start();
  f.sim.run_for(8 * kSecond);
  const std::size_t before = f.sys->rounds_completed();
  ASSERT_GE(before, 1u);
  const PeerId fed = f.sys->raft().fedavg_leader();
  ASSERT_NE(fed, kNoPeer);
  f.sys->crash_peer(fed);
  f.sim.run_for(20 * kSecond);
  EXPECT_GT(f.sys->rounds_completed(), before + 3);
  EXPECT_NE(f.sys->raft().fedavg_leader(), fed);
}

TEST(FullSystem, CrashedPeerExcludedThenRejoinsAfterRestart) {
  FullSystem f(6, 2, 5);
  f.sys->start();
  f.sim.run_for(6 * kSecond);
  // Crash a pure follower.
  PeerId victim = kNoPeer;
  for (PeerId p = 0; p < 6; ++p) {
    bool leader = false;
    for (SubgroupId g = 0; g < 2; ++g) {
      if (f.sys->raft().subgroup_leader(g) == p) leader = true;
    }
    if (!leader) {
      victim = p;
      break;
    }
  }
  ASSERT_NE(victim, kNoPeer);
  f.sys->crash_peer(victim);
  f.sim.run_for(6 * kSecond);
  const std::size_t rounds_mid = f.sys->rounds_completed();
  EXPECT_GE(rounds_mid, 5u);  // aggregation continued without it
  f.sys->restart_peer(victim);
  f.sim.run_for(6 * kSecond);
  // After restart the peer receives globals again.
  EXPECT_EQ(f.sys->global_model_at(victim),
            f.sys->global_model_at(f.sys->raft().fedavg_leader()));
}

TEST(FullSystem, RoundCompletionCallbackReportsGroupCounts) {
  FullSystem f(6, 2, 9);
  std::vector<std::size_t> group_counts;
  f.sys->on_round_complete = [&](std::uint64_t, const secagg::Vector&,
                                 std::size_t groups) {
    group_counts.push_back(groups);
  };
  f.sys->start();
  f.sim.run_for(10 * kSecond);
  ASSERT_FALSE(group_counts.empty());
  for (std::size_t g : group_counts) EXPECT_EQ(g, 2u);
}

TEST(FullSystem, SlowerLinksStillCompleteRounds) {
  // Uniformly slower links (extra 10 ms per hop — still respecting
  // Raft's "broadcast time << election timeout" requirement): transfers
  // take longer, rounds still complete steadily.
  FullSystem f(6, 2, 21);
  for (PeerId p = 0; p < 6; ++p) {
    for (PeerId q = 0; q < 6; ++q) {
      if (p != q) f.net.set_link_delay(p, q, 10 * kMillisecond);
    }
  }
  f.sys->start();
  f.sim.run_for(20 * kSecond);
  EXPECT_GE(f.sys->rounds_completed(), 5u);
  EXPECT_GT(f.sys->evaluate_global().accuracy, 0.4);
}

TEST(FullSystem, CombinedFollowerCrashAndSlowLinksKeepLearning) {
  FullSystem f(9, 3, 23);
  f.sys->start();
  f.sim.run_for(6 * kSecond);
  // Slow down one subgroup's leader (late uploads) and crash a follower
  // elsewhere.
  const PeerId fed = f.sys->raft().fedavg_leader();
  ASSERT_NE(fed, kNoPeer);
  PeerId slow_leader = kNoPeer;
  for (SubgroupId g = 0; g < 3; ++g) {
    const PeerId l = f.sys->raft().subgroup_leader(g);
    if (l != fed) slow_leader = l;
  }
  ASSERT_NE(slow_leader, kNoPeer);
  f.net.set_link_delay(slow_leader, fed, 400 * kMillisecond);
  PeerId follower = kNoPeer;
  for (PeerId p = 0; p < 9; ++p) {
    bool is_leader = false;
    for (SubgroupId g = 0; g < 3; ++g) {
      if (f.sys->raft().subgroup_leader(g) == p) is_leader = true;
    }
    if (!is_leader && p != fed) {
      follower = p;
      break;
    }
  }
  f.sys->crash_peer(follower);
  const std::size_t before = f.sys->rounds_completed();
  f.sim.run_for(15 * kSecond);
  EXPECT_GT(f.sys->rounds_completed(), before + 3);
}

}  // namespace
}  // namespace p2pfl::core
