// Per-kind byte-accounting regression for a full two-layer round.
//
// With no model_wire_bytes override the charged wire size of every
// message equals its real encoded length exactly (modeled_delta = 0),
// and the network's encode-verify mode — on by default here — asserts
// that equality on every single send. On top of that this test pins the
// per-kind message counts and byte totals of a fault-free round to the
// closed forms implied by the framing constants, and the summed |w|-unit
// payload to the paper's Eq. (4) (k = n) and Eq. (5) (k < n).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analysis/cost_model.hpp"
#include "core/topology.hpp"
#include "core/two_layer_agg.hpp"
#include "core/wire.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "secagg/wire.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::core {
namespace {

struct RoundRun {
  sim::Simulator sim;
  net::Network net;
  Topology topo;
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  std::optional<TwoLayerAggregator> agg;
  bool completed = false;

  RoundRun(std::size_t m, std::size_t n, std::size_t tolerance,
           std::size_t dim)
      : sim(31),
        net(sim, net::NetworkConfig{.base_latency = 15 * kMillisecond}),
        topo(Topology::even(m * n, m)) {
    for (PeerId id : topo.all_peers()) {
      auto host = std::make_unique<net::PeerHost>();
      net.attach(id, host.get());
      hosts.emplace(id, std::move(host));
    }
    AggregationConfig cfg;
    cfg.sac_dropout_tolerance = tolerance;
    // No wire override: real encodings are charged byte-for-byte.
    agg.emplace(topo, cfg, net, [this](PeerId id) -> net::PeerHost& {
      return *hosts.at(id);
    });
    agg->on_global_model = [this](std::uint64_t, const secagg::Vector&,
                                  std::size_t) { completed = true; };
    RoundLeadership lead;
    lead.subgroup_leaders = topo.designated_leaders();
    lead.fedavg_leader = lead.subgroup_leaders.front();
    agg->begin_round(1, lead, [dim](PeerId id) {
      return secagg::Vector(dim, static_cast<float>(id + 1));
    });
    sim.run();
  }
};

void check_round(std::size_t m, std::size_t n, std::size_t tolerance,
                 std::size_t dim) {
  SCOPED_TRACE("m=" + std::to_string(m) + " n=" + std::to_string(n) +
               " tol=" + std::to_string(tolerance));
  RoundRun run(m, n, tolerance, dim);
  ASSERT_TRUE(run.completed);

  const std::size_t k = n > tolerance ? n - tolerance : 1;
  const std::uint64_t w = 4 * static_cast<std::uint64_t>(dim);
  const std::uint64_t parts = n - k + 1;
  const std::uint64_t share_wire =
      secagg::wire::kShareHeader +
      parts * (secagg::wire::kPerPartHeader + w);
  const std::uint64_t subtotal_wire = secagg::wire::kSubtotalHeader + w;
  const std::uint64_t upload_wire = core::wire::kUploadHeader + w;
  const std::uint64_t result_wire = core::wire::kResultHeader + w;

  const auto& by_kind = run.net.stats().sent_by_kind;
  std::uint64_t total_payload = 0;
  for (const auto& [kind, c] : by_kind) {
    SCOPED_TRACE(kind);
    total_payload += c.payload;
    // Every kind this round produced has a registered codec — nothing
    // slipped past encode verification.
    ASSERT_NE(net::CodecRegistry::global().find_kind(kind), nullptr);
    if (kind.size() > 6 && kind.compare(kind.size() - 6, 6, "/share") == 0) {
      EXPECT_EQ(c.messages, n * (n - 1));
      EXPECT_EQ(c.bytes, c.messages * share_wire);
      EXPECT_EQ(c.payload, c.messages * parts * w);
    } else if (kind.size() > 9 &&
               kind.compare(kind.size() - 9, 9, "/subtotal") == 0) {
      EXPECT_EQ(c.messages, k - 1);
      EXPECT_EQ(c.bytes, c.messages * subtotal_wire);
      EXPECT_EQ(c.payload, c.messages * w);
    } else if (kind == "agg/upload") {
      EXPECT_EQ(c.messages, m - 1);
      EXPECT_EQ(c.bytes, c.messages * upload_wire);
      EXPECT_EQ(c.payload, c.messages * w);
    } else if (kind == "agg/result") {
      // Return hop to (m-1) other leaders + in-group fan-out m(n-1).
      EXPECT_EQ(c.messages, (m - 1) + m * (n - 1));
      EXPECT_EQ(c.bytes, c.messages * result_wire);
      EXPECT_EQ(c.payload, c.messages * w);
    } else {
      ADD_FAILURE() << "unexpected kind in a fault-free round: " << kind;
    }
  }
  // Delivered matches sent exactly: no chaos, so no copy was lost.
  EXPECT_EQ(run.net.stats().delivered.messages,
            run.net.stats().sent.messages);
  EXPECT_EQ(run.net.stats().delivered.bytes, run.net.stats().sent.bytes);
  EXPECT_EQ(run.net.stats().delivered.payload,
            run.net.stats().sent.payload);

  // The |w|-unit payload total is the paper's closed form.
  const double units =
      static_cast<double>(total_payload) / static_cast<double>(w);
  if (tolerance == 0) {
    EXPECT_DOUBLE_EQ(units, analysis::two_layer_cost_eq4(m, n));
  } else {
    EXPECT_DOUBLE_EQ(units, analysis::two_layer_ft_cost_eq5(m * n, m, n, k));
  }
}

TEST(WireAccounting, FaultFreeRoundMatchesEq4PerKind) {
  check_round(3, 3, 0, 4);
  check_round(2, 4, 0, 6);
  check_round(4, 5, 0, 3);
}

TEST(WireAccounting, FaultTolerantRoundMatchesEq5PerKind) {
  check_round(3, 4, 1, 4);
  check_round(3, 5, 2, 5);
}

TEST(WireAccounting, ModeledCnnChargesDeclareTheirDelta) {
  // With a model_wire_bytes override the charge exceeds the encoding by
  // the declared delta; encode-verify accepts it and the payload counter
  // carries the modeled |w| while bytes carry the modeled wire size.
  constexpr std::uint64_t kCnn = 5'000'000;
  sim::Simulator sim(32);
  net::Network net(sim, net::NetworkConfig{.base_latency = 15 * kMillisecond});
  const Topology topo = Topology::even(9, 3);
  std::map<PeerId, std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId id : topo.all_peers()) {
    auto host = std::make_unique<net::PeerHost>();
    net.attach(id, host.get());
    hosts.emplace(id, std::move(host));
  }
  AggregationConfig cfg;
  cfg.model_wire_bytes = kCnn;
  TwoLayerAggregator agg(topo, cfg, net, [&](PeerId id) -> net::PeerHost& {
    return *hosts.at(id);
  });
  bool completed = false;
  agg.on_global_model = [&](std::uint64_t, const secagg::Vector&,
                            std::size_t) { completed = true; };
  RoundLeadership lead;
  lead.subgroup_leaders = topo.designated_leaders();
  lead.fedavg_leader = lead.subgroup_leaders.front();
  agg.begin_round(1, lead, [](PeerId id) {
    return secagg::Vector(4, static_cast<float>(id + 1));
  });
  sim.run();
  ASSERT_TRUE(completed);
  const auto& st = net.stats();
  // Every transfer models one 5 MB CNN payload: the |w|-unit payload
  // total is Eq. (4) times the modeled size, not the 16-byte vectors.
  EXPECT_EQ(st.sent.payload,
            static_cast<std::uint64_t>(analysis::two_layer_cost_eq4(3, 3)) *
                kCnn);
  EXPECT_GT(st.sent.bytes, st.sent.payload);  // framing rides on top
}

}  // namespace
}  // namespace p2pfl::core
