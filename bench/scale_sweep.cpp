// Kernel scalability sweep (ROADMAP item 1 — OLYMPIA-style concrete
// scalability measurement of the secure-aggregation stack).
//
// Drives full two-layer aggregation rounds (SAC inside every subgroup,
// FedAvg across subgroup leaders, result fan-out) at large N on the
// pooled timer-wheel kernel and reports peers/sec, events/sec and wire
// bytes/sec as a JSON document (stdout + --out file, BENCH_-style
// machine-readable). A second section microbenchmarks raw kernel
// schedule/cancel and schedule/fire throughput against the retained
// naive binary-heap reference (src/sim/reference_queue.hpp) — the
// before/after numbers for the kernel swap.
//
// CI runs `scale_sweep --n 1000` as a smoke test; the 10k/100k points
// run in the nightly scale job (see .github/workflows/ci.yml).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/json_util.hpp"
#include "core/topology.hpp"
#include "core/two_layer_agg.hpp"
#include "net/mux.hpp"
#include "net/network.hpp"
#include "sim/reference_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2pfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct SweepResult {
  std::size_t peers = 0;
  std::size_t groups = 0;
  std::size_t rounds = 0;
  bool completed = false;
  double wall_s = 0.0;
  double sim_ms = 0.0;
  std::uint64_t events = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t envelope_pool = 0;
  std::uint64_t event_pool = 0;
};

/// Full two-layer rounds at N peers: every subgroup runs SAC, leaders
/// FedAvg, the global model fans back out. Models are tiny vectors (the
/// kernel, not the arithmetic, is under test); byte accounting and
/// encode-verify stay on, so the wire numbers are the real protocol's.
SweepResult run_sweep(std::size_t n, std::size_t group_size,
                      std::size_t rounds, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  const core::Topology topo = core::Topology::by_group_size(n, group_size);

  std::vector<std::unique_ptr<net::PeerHost>> hosts(topo.peer_count());
  for (PeerId id : topo.all_peers()) {
    hosts[id] = std::make_unique<net::PeerHost>();
    net.attach(id, hosts[id].get());
  }

  core::AggregationConfig cfg;
  core::TwoLayerAggregator agg(topo, cfg, net,
                               [&](PeerId id) -> net::PeerHost& {
                                 return *hosts[id];
                               });

  SweepResult out;
  out.peers = topo.peer_count();
  out.groups = topo.subgroup_count();
  out.rounds = rounds;

  std::size_t completed_rounds = 0;
  agg.on_global_model = [&](core::TwoLayerAggregator::RoundId,
                            const secagg::Vector&,
                            std::size_t) { ++completed_rounds; };

  core::RoundLeadership lead;
  lead.subgroup_leaders = topo.designated_leaders();
  lead.fedavg_leader = lead.subgroup_leaders.front();

  constexpr std::size_t kDim = 4;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 1; r <= rounds; ++r) {
    agg.begin_round(r, lead, [&](PeerId p) {
      secagg::Vector v(kDim);
      for (std::size_t i = 0; i < kDim; ++i) {
        v[i] = static_cast<float>((p + i) % 17) * 0.25f;
      }
      return v;
    });
    sim.run();
  }
  out.wall_s = seconds_since(t0);
  out.completed = completed_rounds == rounds;
  out.sim_ms = to_ms(sim.now());
  out.events = sim.obs().metrics.counter("sim.events_dispatched").value();
  out.wire_bytes = net.stats().sent.bytes;
  out.envelope_pool = net.envelope_pool_slots();
  out.event_pool = sim.pool_slot_count();
  return out;
}

/// Raw kernel churn: a ring of outstanding timers, each new schedule
/// cancelling the oldest — the Raft election-timeout reset pattern.
template <class Kernel>
double schedule_cancel_ops_per_sec(Kernel& k, std::size_t ops) {
  constexpr std::size_t kRing = 1024;
  std::vector<std::uint64_t> ring(kRing, 0);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < ops; ++i) {
    const SimDuration delay =
        static_cast<SimDuration>((i * 131) % (150 * kMillisecond));
    const std::size_t at = i % kRing;
    if (ring[at] != 0) k.cancel(ring[at]);
    ring[at] = k.schedule_after(delay, [] {});
    if (i % 8192 == 8191) k.run_for(kMillisecond);
  }
  k.run();
  return static_cast<double>(ops) / seconds_since(t0);
}

/// Raw kernel dispatch: schedule a batch at mixed horizons, drain it.
template <class Kernel>
double schedule_fire_ops_per_sec(Kernel& k, std::size_t ops) {
  const auto t0 = std::chrono::steady_clock::now();
  constexpr std::size_t kBatch = 65536;
  std::size_t done = 0;
  while (done < ops) {
    const std::size_t batch = std::min(kBatch, ops - done);
    for (std::size_t i = 0; i < batch; ++i) {
      const SimDuration delay =
          static_cast<SimDuration>((i * 977) % (400 * kMillisecond));
      k.schedule_after(delay, [] {});
    }
    k.run();
    done += batch;
  }
  return static_cast<double>(ops) / seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 1000));
  const std::size_t group_size =
      static_cast<std::size_t>(args.get_int("group-size", 32));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 1));
  const std::size_t micro_ops =
      static_cast<std::size_t>(args.get_int("micro-ops", 1'000'000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string out_path =
      args.get("out", P2PFL_REPO_ROOT "/BENCH_scale.json");

  std::fprintf(stderr, "scale_sweep: N=%zu group_size=%zu rounds=%zu ...\n",
               n, group_size, rounds);
  const SweepResult s = run_sweep(n, group_size, rounds, seed);

  double micro_wheel_sc = 0, micro_wheel_sf = 0;
  double micro_naive_sc = 0, micro_naive_sf = 0;
  if (micro_ops > 0) {
    sim::Simulator wheel_a(1);
    micro_wheel_sc = schedule_cancel_ops_per_sec(wheel_a, micro_ops);
    sim::Simulator wheel_b(1);
    micro_wheel_sf = schedule_fire_ops_per_sec(wheel_b, micro_ops);
    sim::ReferenceQueue naive_a;
    micro_naive_sc = schedule_cancel_ops_per_sec(naive_a, micro_ops);
    sim::ReferenceQueue naive_b;
    micro_naive_sf = schedule_fire_ops_per_sec(naive_b, micro_ops);
  }

  bench::JsonWriter w = bench::bench_document("scale_sweep");
  w.field_u64("n", s.peers)
      .field_u64("group_size", group_size)
      .field_u64("groups", s.groups)
      .field_u64("rounds", s.rounds)
      .field_bool("completed", s.completed)
      .field_double("wall_s", s.wall_s, "%.6f")
      .field_double("sim_ms", s.sim_ms, "%.3f")
      .field_double("peers_per_sec",
                    static_cast<double>(s.peers * s.rounds) / s.wall_s,
                    "%.1f")
      .field_u64("events", s.events)
      .field_double("events_per_sec",
                    static_cast<double>(s.events) / s.wall_s, "%.1f")
      .field_u64("wire_bytes", s.wire_bytes)
      .field_double("wire_bytes_per_sec",
                    static_cast<double>(s.wire_bytes) / s.wall_s, "%.1f")
      .field_u64("event_pool_slots", s.event_pool)
      .field_u64("envelope_pool_slots", s.envelope_pool);
  w.key("micro").object_begin().field_u64("ops", micro_ops);
  w.key("wheel")
      .object_begin()
      .field_double("schedule_cancel_per_sec", micro_wheel_sc, "%.1f")
      .field_double("schedule_fire_per_sec", micro_wheel_sf, "%.1f")
      .object_end();
  w.key("naive_heap")
      .object_begin()
      .field_double("schedule_cancel_per_sec", micro_naive_sc, "%.1f")
      .field_double("schedule_fire_per_sec", micro_naive_sf, "%.1f")
      .object_end();
  w.key("speedup")
      .object_begin()
      .field_double("schedule_cancel",
                    micro_naive_sc > 0 ? micro_wheel_sc / micro_naive_sc
                                       : 0.0,
                    "%.2f")
      .field_double("schedule_fire",
                    micro_naive_sf > 0 ? micro_wheel_sf / micro_naive_sf
                                       : 0.0,
                    "%.2f")
      .object_end()
      .object_end()
      .object_end();

  const int emit_rc = bench::emit_bench_json(w.str(), out_path, "scale_sweep");
  if (emit_rc != 0) return emit_rc;
  if (!s.completed) {
    std::fprintf(stderr,
                 "scale_sweep: round did not complete (%zu peers)\n",
                 s.peers);
    return 1;
  }
  return 0;
}
