// §VII-C: communication cost of the X-layer generalization with SAC in
// every layer. Reproduces Eq. (6) (peer capacity) and Eq. (10)
// (C_total = (N-1)(n+2)|w|), and shows the cost approaching O(N) as the
// subgroup size shrinks with more layers.
#include <cstdio>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t max_layers =
      static_cast<std::size_t>(args.get_int("layers", 4));
  const analysis::ModelSize w;

  bench::print_environment("§VII-C — multi-layer aggregation cost");
  std::printf("%3s %3s %12s %14s %16s %18s\n", "n", "X", "peers N",
              "cost (|w|)", "cost (Gb)", "per-peer (|w|/N)");
  for (std::size_t n : {3u, 4u, 5u, 6u}) {
    for (std::size_t layers = 1; layers <= max_layers; ++layers) {
      const std::uint64_t N = analysis::multilayer_peers(n, layers);
      const double units = analysis::multilayer_cost(n, layers);
      std::printf("%3zu %3zu %12llu %14.0f %16.2f %18.3f\n", n, layers,
                  static_cast<unsigned long long>(N), units,
                  w.gigabits_for(units),
                  units / static_cast<double>(N));
    }
    std::printf("\n");
  }
  std::printf("per-peer cost stays ~(n+2): the hierarchy is O(nN) total, "
              "O(n) per peer,\nvs O(N) per peer for one-layer SAC.\n");
  return 0;
}
