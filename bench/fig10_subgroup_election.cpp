// Fig. 10: time to detect a crashed subgroup leader and elect a new one.
// N = 25 peers in five subgroups of five; follower/candidate timeouts
// drawn from U(T, 2T) for T = 50, 100, 150, 200 ms; 15 ms link latency.
// The paper runs 1000 trials per setting (averages 214.30 / 401.04 /
// 580.74 / 749.07 ms); use --trials=1000 for the full run.
#include <cstdio>

#include "bench/raft_recovery_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(args.get_int("trials", 200));
  const std::size_t peers =
      static_cast<std::size_t>(args.get_int("peers", 25));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 5));
  bench::print_environment(
      "Fig. 10 — detect crashed subgroup leader + elect new one");
  std::printf("N=%zu, %zu subgroups, %zu trials per timeout setting\n\n",
              peers, groups, trials);

  const double paper_means[] = {214.30, 401.04, 580.74, 749.07};
  std::printf("%12s %10s %10s %10s %10s %10s %10s %12s\n", "timeout",
              "mean ms", "p50", "p95", "p99", "min", "max", "paper mean");
  int idx = 0;
  for (const SimDuration t : bench::timeout_settings()) {
    std::vector<double> elect;
    for (std::size_t i = 0; i < trials; ++i) {
      const auto r = bench::run_recovery_trial(
          bench::CrashKind::kSubgroupLeader, t, 0x1000 + i * 7919 + idx,
          peers, groups);
      if (r.ok) elect.push_back(r.elect_ms);
    }
    const auto s = bench::summarize(elect);
    std::printf(
        "%5lld-%lldms %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %12.2f\n",
        static_cast<long long>(t / kMillisecond),
        static_cast<long long>(2 * t / kMillisecond), s.mean, s.p50, s.p95,
        s.p99, s.min, s.max, paper_means[idx]);
    ++idx;
  }
  std::printf("\n(shape check: recovery time grows linearly with T; the "
              "paper's absolute values\ninclude hashicorp-raft overheads our "
              "simulator does not model)\n");

  // One fully traced trial for offline inspection of the recovery.
  bench::run_recovery_trial(bench::CrashKind::kSubgroupLeader,
                            50 * kMillisecond, 0x1000, peers, groups,
                            args.get("trace-out", "fig10"));
  return 0;
}
