// Shared trial harness for the two-layer Raft recovery figures
// (Figs. 10-12): N = 25 peers in five subgroups of five, link latency
// 15 ms, follower/candidate timeouts ~ U(T, 2T) for
// T = 50, 100, 150, 200 ms, 1000 trials per setting in the paper
// (default here 200; --trials=1000 for the full run).
//
// Per trial: bring a fresh system to the steady state, crash the chosen
// leader, and timestamp the recovery milestones via the system's hooks.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/obs_util.hpp"
#include "chaos/engine.hpp"
#include "core/two_layer_raft.hpp"
#include "obs/metrics.hpp"

namespace p2pfl::bench {

enum class CrashKind {
  kSubgroupLeader,  // Figs. 10-11: a subgroup leader (not FedAvg leader)
  kFedAvgLeader,    // Fig. 12: the FedAvg leader (double recovery)
};

struct TrialResult {
  /// Crash -> new leader elected in the victim's subgroup.
  double elect_ms = -1.0;
  /// Crash -> that leader joined the FedAvg layer.
  double join_ms = -1.0;
  /// Crash -> new FedAvg leader elected (Fig. 12 only).
  double fed_elect_ms = -1.0;
  /// Crash -> fully recovered (all applicable milestones).
  double full_ms = -1.0;
  bool ok = false;
};

/// `trace_base`, when non-empty, enables tracing for this trial and
/// exports <trace_base>.metrics.jsonl / <trace_base>.trace.json on every
/// exit path (the harness has several early returns).
inline TrialResult run_recovery_trial(CrashKind kind, SimDuration timeout_t,
                                      std::uint64_t seed,
                                      std::size_t peers = 25,
                                      std::size_t groups = 5,
                                      const std::string& trace_base = {}) {
  using namespace p2pfl::core;
  sim::Simulator sim(seed);
  std::unique_ptr<ScopedObsExport> exporter;
  if (!trace_base.empty()) {
    exporter = std::make_unique<ScopedObsExport>(sim, trace_base);
  }
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = timeout_t;
  opts.raft.election_timeout_max = 2 * timeout_t;
  opts.fedavg_presence_poll = 100 * kMillisecond;  // §VI-B3
  TwoLayerRaftSystem sys(Topology::even(peers, groups), opts, net);
  sys.start_all();

  TrialResult out;
  const SimTime stable_deadline = 60 * kSecond;
  while (sim.now() < stable_deadline && !sys.stabilized()) {
    sim.run_for(20 * kMillisecond);
  }
  if (!sys.stabilized()) return out;

  const PeerId fed = sys.fedavg_leader();
  PeerId victim = kNoPeer;
  if (kind == CrashKind::kFedAvgLeader) {
    victim = fed;
  } else {
    for (SubgroupId g = 0; g < groups; ++g) {
      const PeerId l = sys.subgroup_leader(g);
      if (l != fed) {
        victim = l;
        break;
      }
    }
  }
  if (victim == kNoPeer) return out;
  const SubgroupId victim_group = sys.topology().subgroup_of(victim);

  std::optional<SimTime> elected, joined, fed_elected;
  sys.on_subgroup_leader = [&](SubgroupId g, PeerId) {
    if (g == victim_group && !elected) elected = sim.now();
  };
  sys.on_fedavg_joined = [&](PeerId p) {
    if (sys.topology().subgroup_of(p) == victim_group && !joined) {
      joined = sim.now();
    }
  };
  sys.on_fedavg_leader = [&](PeerId) {
    if (!fed_elected) fed_elected = sim.now();
  };

  // The crash is injected through a ChaosPlan so every recovery run is a
  // pure (seed, plan) pair: the fault lands on the chaos trace/metrics
  // and the trial replays exactly. The hook routes the crash through the
  // Raft system (stops the node, not just its links).
  const SimTime crash_at = sim.now();
  chaos::ChaosPlan plan;
  plan.crash_at(crash_at, victim);
  chaos::ChaosEngineHooks hooks;
  hooks.crash = [&sys](PeerId p) { sys.crash_peer(p); };
  chaos::ChaosEngine chaos_engine(net, std::move(plan), hooks);
  chaos_engine.start();

  const bool need_fed = kind == CrashKind::kFedAvgLeader;
  const SimTime deadline = crash_at + 60 * kSecond;
  while (sim.now() < deadline) {
    if (elected && joined && (!need_fed || fed_elected)) break;
    sim.run_for(10 * kMillisecond);
  }
  if (exporter) print_traffic(net.stats());
  if (!elected || !joined || (need_fed && !fed_elected)) return out;

  out.elect_ms = to_ms(*elected - crash_at);
  out.join_ms = to_ms(*joined - crash_at);
  if (need_fed) {
    out.fed_elect_ms = to_ms(*fed_elected - crash_at);
    out.full_ms = to_ms(std::max(*joined, *fed_elected) - crash_at);
  } else {
    out.full_ms = out.join_ms;
  }
  out.ok = true;
  return out;
}

struct Stats {
  double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, min = 0.0, max = 0.0;
  std::size_t n = 0;
};

/// Quantiles come from an obs::Histogram (the same estimator the metrics
/// registry exports), so a bench table row and the corresponding
/// *.metrics.jsonl histogram agree. The bucket grid is rebuilt from the
/// sample range with 512 buckets; interpolation error is < 1/512 of the
/// range and the estimate clamps to the observed [min, max].
inline Stats summarize(const std::vector<double>& xs) {
  Stats s;
  if (xs.empty()) return s;
  s.n = xs.size();
  const auto [lo_it, hi_it] = std::minmax_element(xs.begin(), xs.end());
  const double lo = *lo_it, hi = *hi_it;
  const double step = std::max((hi - lo) / 512.0, 1e-9);
  obs::Histogram h(obs::Histogram::linear_bounds(lo, step, 513));
  for (double x : xs) h.record(x);
  s.mean = h.mean();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  s.min = h.min();
  s.max = h.max();
  return s;
}

inline void print_histogram(const std::vector<double>& xs,
                            double bucket_ms) {
  if (xs.empty()) return;
  const double hi = *std::max_element(xs.begin(), xs.end());
  const std::size_t buckets =
      static_cast<std::size_t>(hi / bucket_ms) + 1;
  std::vector<std::size_t> counts(buckets, 0);
  for (double x : xs) {
    ++counts[static_cast<std::size_t>(x / bucket_ms)];
  }
  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  for (std::size_t b = 0; b < buckets; ++b) {
    if (counts[b] == 0) continue;
    const int bars =
        static_cast<int>(40.0 * static_cast<double>(counts[b]) /
                         static_cast<double>(peak));
    std::printf("    %5.0f-%5.0fms |%-40.*s %zu\n", b * bucket_ms,
                (b + 1) * bucket_ms, bars,
                "########################################", counts[b]);
  }
}

inline std::vector<SimDuration> timeout_settings() {
  return {50 * kMillisecond, 100 * kMillisecond, 150 * kMillisecond,
          200 * kMillisecond};
}

}  // namespace p2pfl::bench
