// Shared JSON emission for the bench binaries and p2pflctl --json.
//
// Every machine-readable bench document (BENCH_scale.json,
// BENCH_attack.json, the --json outputs of p2pflctl) used to hand-roll
// its own snprintf JSON; this header centralizes that into one writer
// with deterministic formatting, and stamps every document with
// `bench` + `schema_version` so the regression gate (bench/regress) can
// refuse documents it does not understand. Keys are emitted in call
// order and doubles through fixed printf formats, so a deterministic
// run serializes byte-identically.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.hpp"

namespace p2pfl::bench {

/// Version of every BENCH_*.json document (bump on layout changes).
inline constexpr std::uint32_t kBenchSchemaVersion = 1;

/// Minimal order-preserving JSON document builder.
class JsonWriter {
 public:
  JsonWriter& object_begin() {
    value_prefix();
    out_ += '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& object_end() {
    out_ += '}';
    first_.pop_back();
    return *this;
  }
  JsonWriter& array_begin() {
    value_prefix();
    out_ += '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& array_end() {
    out_ += ']';
    first_.pop_back();
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
    out_ += obs::json_quote(k);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& value_u64(std::uint64_t v) {
    value_prefix();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value_bool(bool v) {
    value_prefix();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& value_str(std::string_view v) {
    value_prefix();
    out_ += obs::json_quote(v);
    return *this;
  }
  /// `fmt` must consume exactly one double (e.g. "%.4f", "%.17g").
  JsonWriter& value_double(double v, const char* fmt = "%.17g") {
    value_prefix();
    char buf[64];
    std::snprintf(buf, sizeof buf, fmt, v);
    out_ += buf;
    return *this;
  }
  /// Splice a pre-rendered JSON value (an obs::SloReport::json(), …).
  JsonWriter& value_raw(std::string_view json) {
    value_prefix();
    out_ += json;
    return *this;
  }

  JsonWriter& field_u64(std::string_view k, std::uint64_t v) {
    return key(k).value_u64(v);
  }
  JsonWriter& field_bool(std::string_view k, bool v) {
    return key(k).value_bool(v);
  }
  JsonWriter& field_str(std::string_view k, std::string_view v) {
    return key(k).value_str(v);
  }
  JsonWriter& field_double(std::string_view k, double v,
                           const char* fmt = "%.17g") {
    return key(k).value_double(v, fmt);
  }
  JsonWriter& field_raw(std::string_view k, std::string_view json) {
    return key(k).value_raw(json);
  }

  const std::string& str() const { return out_; }

 private:
  void value_prefix() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) out_ += ',';
      first_.back() = false;
    }
  }

  std::string out_;
  std::vector<bool> first_;
  bool after_key_ = false;
};

/// Start a BENCH document: `{"bench":"<name>","schema_version":N,...`.
inline JsonWriter bench_document(std::string_view name) {
  JsonWriter w;
  w.object_begin()
      .field_str("bench", name)
      .field_u64("schema_version", kBenchSchemaVersion);
  return w;
}

/// Print the finished document to stdout and write it to `out_path`
/// (skipped when empty). Returns 0, or 2 when the file could not be
/// written — the usage-error exit code shared by every bench.
inline int emit_bench_json(const std::string& json,
                           const std::string& out_path, const char* bench) {
  std::printf("%s\n", json.c_str());
  if (out_path.empty()) return 0;
  if (!obs::write_text_file(out_path, json + "\n")) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench, out_path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace p2pfl::bench
