// Shared runner for the federated-training figures (Figs. 6-9).
//
// Defaults are CI-scale (MLP on synthetic data, fewer rounds). Paper
// scale is reachable with flags:
//   --full            1000 rounds, Fig. 5 CNN on 32x32x3 input
//   --rounds=R --peers=N --model=cnn|mlp --seed=S
// Output: one line per evaluation round and per configuration, in
// columns `<config> <round> <metric>` (easy to grep/plot), then a
// summary row per configuration.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/fl_experiment.hpp"

namespace p2pfl::bench {

struct SeriesPoint {
  std::size_t round;
  double accuracy;
  double loss;
  double train_loss;
};

struct SeriesResult {
  std::string label;
  std::vector<SeriesPoint> points;
  double final_accuracy = 0.0;
  double final_loss = 0.0;
};

inline core::FlExperimentConfig base_config_from_args(const Args& args) {
  core::FlExperimentConfig cfg;
  const bool full = args.has("full");
  cfg.peers = static_cast<std::size_t>(args.get_int("peers", 10));
  cfg.rounds =
      static_cast<std::size_t>(args.get_int("rounds", full ? 1000 : 60));
  cfg.eval_every = static_cast<std::size_t>(
      args.get_int("eval-every", full ? 10 : 5));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.train.batch_size =
      static_cast<std::size_t>(args.get_int("batch", 50));

  const std::string model = args.get("model", full ? "cnn" : "mlp");
  if (model == "cnn") {
    cfg.model = core::ModelKind::kPaperCnn;
    cfg.data = fl::cifar10_like();
    cfg.data.train_samples =
        static_cast<std::size_t>(args.get_int("samples", 5000));
    cfg.data.test_samples = 1000;
    cfg.learning_rate = 1e-4f;  // §VI-A1: Adam, lr 0.0001
  } else {
    cfg.model = core::ModelKind::kMlp;
    cfg.mlp_hidden = {64};
    cfg.data = fl::mnist_like();
    cfg.data.train_samples =
        static_cast<std::size_t>(args.get_int("samples", 3000));
    cfg.data.test_samples = 600;
    // Difficulty tuned so the default 60-round run lands near the
    // paper's CIFAR-10 accuracy range (IID ~70%, Non-IID(0%) ~50%).
    cfg.data.noise_scale = args.get_double("noise", 6.0);
    cfg.learning_rate = 1e-3f;
  }
  return cfg;
}

inline SeriesResult run_series(const core::FlExperimentConfig& cfg,
                               std::string label) {
  SeriesResult out;
  out.label = std::move(label);
  const auto result = core::run_fl_experiment(
      cfg, [&out](const core::RoundRecord& rec) {
        if (rec.test_accuracy) {
          out.points.push_back(SeriesPoint{rec.round, *rec.test_accuracy,
                                           rec.test_loss.value_or(0.0),
                                           rec.train_loss});
        }
      });
  out.final_accuracy = result.final_accuracy;
  out.final_loss = result.final_test_loss;
  return out;
}

inline void print_series(const std::vector<SeriesResult>& series,
                         bool accuracy) {
  std::printf("%-28s %6s %10s\n", "config", "round",
              accuracy ? "test-acc%" : "train-loss");
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      std::printf("%-28s %6zu %10.4f\n", s.label.c_str(), p.round,
                  accuracy ? p.accuracy * 100.0 : p.train_loss);
    }
  }
  std::printf("\nsummary (final round):\n");
  for (const auto& s : series) {
    std::printf("  %-28s acc %6.2f%%  test loss %.4f\n", s.label.c_str(),
                s.final_accuracy * 100.0, s.final_loss);
  }
}

inline const char* dist_flag_name(core::DataDistribution d) {
  return core::distribution_name(d);
}

inline std::vector<core::DataDistribution> all_distributions() {
  return {core::DataDistribution::kIid, core::DataDistribution::kNonIid5,
          core::DataDistribution::kNonIid0};
}

}  // namespace p2pfl::bench
