// Ablation (beyond the paper's byte counts): wall-clock latency of one
// aggregation round under a finite per-peer uplink. The paper's §VII
// analysis counts bytes; with a real NIC the *time* story is even more
// lopsided — in one-layer SAC every peer must push N-1 shares and N-1
// subtotals through its own uplink, while the two-layer system
// parallelizes across subgroups.
//
// Defaults: |w| = 5 MB (the Fig. 5 CNN), 100 Mbit/s uplinks, 15 ms
// latency, N = 30 — the transfer of one model takes 0.4 s.
#include <cstdio>
#include <string>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"
#include "core/agg_cost_sim.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t N = static_cast<std::size_t>(args.get_int("peers", 30));
  const std::uint64_t wire =
      static_cast<std::uint64_t>(args.get_int("model-bytes", 5'000'000));
  const std::uint64_t mbps =
      static_cast<std::uint64_t>(args.get_int("uplink-mbps", 100));
  const std::uint64_t bps = mbps * 1'000'000 / 8;

  bench::print_environment("ablation — aggregation round latency vs m");
  std::printf("N=%zu, |w| = %.1f MB, uplink %llu Mbit/s (one transfer = "
              "%.0f ms)\n\n",
              N, static_cast<double>(wire) / 1e6,
              static_cast<unsigned long long>(mbps),
              static_cast<double>(wire) / static_cast<double>(bps) * 1e3);

  const auto one = core::simulate_one_layer_latency(N, wire, bps);
  std::printf("%-24s %14s %16s\n", "configuration", "aggregate ms",
              "all peers ms");
  std::printf("%-24s %14.0f %16.0f\n", "one-layer SAC (m=1)",
              one.aggregate_ms, one.all_received_ms);

  for (std::size_t m : {2u, 3u, 5u, 6u, 10u}) {
    if (m > N) break;
    const auto groups = analysis::subgroup_sizes(N, m);
    const auto two = core::simulate_two_layer_latency(groups, 0, wire, bps);
    char label[32];
    std::snprintf(label, sizeof label, "two-layer m=%zu (n=%zu)", m,
                  groups.front());
    std::printf("%-24s %14.0f %16.0f   (%.2fx faster than 1-layer)\n",
                label, two.aggregate_ms, two.all_received_ms,
                one.all_received_ms / two.all_received_ms);
  }

  std::printf("\nwith fault tolerance (m=6, tolerance 1 -> more share "
              "replicas to push):\n");
  const auto groups = analysis::subgroup_sizes(N, 6);
  const auto ft = core::simulate_two_layer_latency(groups, 1, wire, bps);
  std::printf("%-24s %14.0f %16.0f\n", "two-layer m=6, k=n-1",
              ft.aggregate_ms, ft.all_received_ms);

  // Where does the round latency go? Re-run the m=6 round with causal
  // span recording and attribute the FedAvg leader's commit latency to
  // protocol phases / links via the critical-path extractor. The phase
  // column sums exactly to the round latency.
  std::printf("\ncritical path of the m=6 round (span attribution):\n");
  const std::string base = args.get("trace-out", "ablation");
  core::AggSimHooks hooks;
  hooks.on_start = [](sim::Simulator& s) { s.obs().spans.set_enabled(true); };
  hooks.on_finish = [&](sim::Simulator& s) {
    const obs::CriticalPath cp = obs::extract_critical_path(s.obs().spans, 1);
    std::printf("%s", obs::critical_path_table(cp).c_str());
    const std::string spans_path = base + ".spans.jsonl";
    obs::write_text_file(spans_path, obs::spans_jsonl(s.obs().spans));
    std::fprintf(stderr, "# spans:   %s\n", spans_path.c_str());
  };
  core::simulate_two_layer_latency(groups, 1, wire, bps, hooks);
  return 0;
}
