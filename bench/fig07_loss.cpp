// Fig. 7: training loss of the two-layer SAC vs the one-layer SAC
// baseline (same setting as Fig. 6). The curves for all n should
// coincide per data distribution.
#include <cstdio>

#include "bench/fl_series_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  bench::print_environment("Fig. 7 — two-layer SAC vs baseline, training loss");

  const core::FlExperimentConfig base = bench::base_config_from_args(args);
  std::vector<bench::SeriesResult> series;
  for (const auto dist : bench::all_distributions()) {
    for (const std::size_t n : {3u, 5u, 10u}) {
      core::FlExperimentConfig cfg = base;
      cfg.distribution = dist;
      if (n >= cfg.peers) {
        cfg.aggregation = core::AggregationKind::kOneLayerSac;
      } else {
        cfg.aggregation = core::AggregationKind::kTwoLayerSac;
        cfg.group_size = n;
      }
      const std::string label = std::string(core::distribution_name(dist)) +
                                (n >= cfg.peers ? " baseline(n=N)"
                                                : " n=" + std::to_string(n));
      std::fprintf(stderr, "running %s...\n", label.c_str());
      series.push_back(bench::run_series(cfg, label));
    }
  }
  bench::print_series(series, /*accuracy=*/false);
  return 0;
}
