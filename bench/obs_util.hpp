// Shared observability export helpers for the bench binaries.
//
// Every fig10-fig14 bench writes two machine-readable artifacts next to
// its stdout table:
//   <base>.metrics.jsonl  - one JSON object per metric (obs::metrics_jsonl)
//   <base>.trace.json     - Chrome trace_event JSON; load it in
//                           about://tracing or ui.perfetto.dev
#pragma once

#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::bench {

/// Dump the simulator's metrics registry and trace stream to
/// `<base>.metrics.jsonl` / `<base>.trace.json`.
inline void export_observability(sim::Simulator& sim,
                                 const std::string& base) {
  const std::string metrics_path = base + ".metrics.jsonl";
  const std::string trace_path = base + ".trace.json";
  obs::write_text_file(metrics_path, obs::metrics_jsonl(sim.obs().metrics));
  obs::write_text_file(trace_path, obs::chrome_trace_json(sim.obs().trace));
  std::cerr << "# metrics: " << metrics_path << "\n"
            << "# trace:   " << trace_path
            << " (open in about://tracing)\n";
}

/// RAII exporter: enables tracing on construction and exports on scope
/// exit, so trial helpers with early returns still produce artifacts.
class ScopedObsExport {
 public:
  ScopedObsExport(sim::Simulator& sim, std::string base)
      : sim_(sim), base_(std::move(base)) {
    sim_.obs().trace.set_enabled(true);
  }
  ~ScopedObsExport() { export_observability(sim_, base_); }

  ScopedObsExport(const ScopedObsExport&) = delete;
  ScopedObsExport& operator=(const ScopedObsExport&) = delete;

 private:
  sim::Simulator& sim_;
  std::string base_;
};

}  // namespace p2pfl::bench
