// Shared observability export helpers for the bench binaries.
//
// Every fig10-fig14 bench writes three machine-readable artifacts next
// to its stdout table:
//   <base>.metrics.jsonl  - one JSON object per metric (obs::metrics_jsonl)
//   <base>.trace.json     - Chrome trace_event JSON; load it in
//                           about://tracing or ui.perfetto.dev
//   <base>.spans.jsonl    - one JSON object per causal span
//                           (obs::spans_jsonl), when spans were recorded
#pragma once

#include <iostream>
#include <string>

#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "sim/simulator.hpp"

namespace p2pfl::bench {

/// Dump the simulator's metrics registry, trace stream and span recorder
/// to `<base>.metrics.jsonl` / `<base>.trace.json` / `<base>.spans.jsonl`.
/// Span export (and span->trace flow events) is skipped when no spans
/// were recorded, so trace-only callers keep their old artifacts.
inline void export_observability(sim::Simulator& sim,
                                 const std::string& base) {
  const std::string metrics_path = base + ".metrics.jsonl";
  const std::string trace_path = base + ".trace.json";
  obs::write_text_file(metrics_path, obs::metrics_jsonl(sim.obs().metrics));
  const bool have_spans = sim.obs().spans.size() > 0;
  obs::write_text_file(
      trace_path,
      have_spans ? obs::chrome_trace_json(sim.obs().trace, sim.obs().spans)
                 : obs::chrome_trace_json(sim.obs().trace));
  std::cerr << "# metrics: " << metrics_path << "\n"
            << "# trace:   " << trace_path
            << " (open in about://tracing)\n";
  if (have_spans) {
    const std::string spans_path = base + ".spans.jsonl";
    obs::write_text_file(spans_path, obs::spans_jsonl(sim.obs().spans));
    std::cerr << "# spans:   " << spans_path << "\n";
  }
}

/// RAII exporter: enables tracing + span recording on construction and
/// exports on scope exit, so trial helpers with early returns still
/// produce artifacts.
class ScopedObsExport {
 public:
  ScopedObsExport(sim::Simulator& sim, std::string base)
      : sim_(sim), base_(std::move(base)) {
    sim_.obs().trace.set_enabled(true);
    sim_.obs().spans.set_enabled(true);
  }
  ~ScopedObsExport() { export_observability(sim_, base_); }

  ScopedObsExport(const ScopedObsExport&) = delete;
  ScopedObsExport& operator=(const ScopedObsExport&) = delete;

 private:
  sim::Simulator& sim_;
  std::string base_;
};

}  // namespace p2pfl::bench
