// Fig. 12: recovery from a crashed FedAvg leader. The victim was both
// the FedAvg leader and a subgroup leader, so two elections run and the
// new subgroup leader joins the rebuilt FedAvg group. The joiner polls
// for FedAvg-leader presence every 100 ms (§VI-B3).
// The paper reports the recovery taking 95.07 / 114.65 / 130.30 /
// 158.53 ms longer than the Fig. 11 case for the four timeout settings.
#include <cstdio>

#include "bench/raft_recovery_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(args.get_int("trials", 200));
  bench::print_environment(
      "Fig. 12 — FedAvg leader crash: double election + rejoin");
  std::printf("N=25, 5 subgroups, %zu trials per timeout setting\n\n",
              trials);

  const double paper_extra[] = {95.07, 114.65, 130.30, 158.53};
  std::printf("%12s %12s %12s %12s %10s %10s %10s %18s\n", "timeout",
              "fed elect", "sub elect", "full ms", "p50 full", "p95 full",
              "p99 full", "paper extra vs f11");
  int idx = 0;
  for (const SimDuration t : bench::timeout_settings()) {
    std::vector<double> fed_elect, sub_elect, full;
    for (std::size_t i = 0; i < trials; ++i) {
      const auto r = bench::run_recovery_trial(
          bench::CrashKind::kFedAvgLeader, t, 0x4000 + i * 6151 + idx);
      if (r.ok) {
        fed_elect.push_back(r.fed_elect_ms);
        sub_elect.push_back(r.elect_ms);
        full.push_back(r.full_ms);
      }
    }
    const auto sf = bench::summarize(fed_elect);
    const auto ss = bench::summarize(sub_elect);
    const auto sa = bench::summarize(full);
    std::printf(
        "%5lld-%lldms %12.2f %12.2f %12.2f %10.2f %10.2f %10.2f %18.2f\n",
        static_cast<long long>(t / kMillisecond),
        static_cast<long long>(2 * t / kMillisecond), sf.mean, ss.mean,
        sa.mean, sa.p50, sa.p95, sa.p99, paper_extra[idx]);
    ++idx;
  }
  std::printf("\n(the joiner must wait for the FedAvg-layer election to "
              "finish before it can be\nadded — §V-B1 — so full recovery "
              "exceeds the single-layer case of Fig. 11)\n");

  // One fully traced trial covering the double-recovery sequence.
  bench::run_recovery_trial(bench::CrashKind::kFedAvgLeader,
                            50 * kMillisecond, 0x4000, 25, 5,
                            args.get("trace-out", "fig12"));
  return 0;
}
