// Fig. 13: total communication cost per aggregation vs. subgroup count m
// (N = 30 peers, 1.25M-parameter CNN), plus the §VII-A headline numbers.
//
// Two independent sources must agree: the closed-form cost model and the
// bytes actually counted by the network simulator while the two-layer
// aggregation protocol runs (SAC shares + subtotals + FedAvg uploads +
// result broadcasts). The binary prints both columns.
#include <cstdio>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"
#include "bench/obs_util.hpp"
#include "core/agg_cost_sim.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t N = static_cast<std::size_t>(args.get_int("peers", 30));
  const analysis::ModelSize w{
      static_cast<std::uint64_t>(args.get_int("params", 1'250'000))};

  bench::print_environment("Fig. 13 — communication cost per aggregation vs m");
  std::printf("N=%zu peers, |w| = %.0f Mb (%llu params)\n\n", N, w.megabits(),
              static_cast<unsigned long long>(w.params));
  std::printf("%4s %6s %14s %14s %12s\n", "m", "n", "model (Gb)",
              "simulated (Gb)", "vs 1-layer");

  const double baseline_units = analysis::one_layer_sac_cost(N);
  for (std::size_t m = 1; m <= N; ++m) {
    const auto groups = analysis::subgroup_sizes(N, m);
    const double units = m == N
                             ? 2.0 * static_cast<double>(N - 1)
                             : analysis::two_layer_cost(groups);
    // m = N degenerates to plain FedAvg: N-1 uploads + N-1 downloads.
    const double sim_units = core::simulate_aggregation_cost_units(groups, 0);
    const double gb = w.gigabits_for(units);
    std::printf("%4zu %6zu %14.3f %14.3f %11.2fx\n", m, groups.front(), gb,
                m == N ? gb : w.gigabits_for(sim_units),
                baseline_units / units);
  }

  const auto g6 = analysis::subgroup_sizes(N, 6);
  std::printf("\nheadline: m=6 cost %.2f Gb (paper: 7.12 Gb), "
              "%.2fx below one-layer SAC (paper: ~10x)\n",
              w.gigabits_for(analysis::two_layer_cost(g6)),
              baseline_units / analysis::two_layer_cost(g6));

  // Traced + metered re-run of the m=6 round for offline inspection.
  const std::string base = args.get("trace-out", "fig13");
  core::AggSimHooks hooks;
  hooks.on_start = [](sim::Simulator& s) { s.obs().trace.set_enabled(true); };
  hooks.on_finish = [&](sim::Simulator& s) {
    bench::export_observability(s, base);
  };
  core::simulate_aggregation_cost(g6, 0, hooks);
  return 0;
}
