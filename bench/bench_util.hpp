// Shared helpers for the figure-reproduction binaries.
//
// Each bench prints (a) the evaluation-environment header standing in
// for Table I, and (b) the figure's data series in a plain columnar
// format, plus the headline comparisons the paper calls out in prose.
// Flags use a tiny --key=value parser so the full paper-scale
// configuration stays reachable from the CI-scale defaults.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "net/network.hpp"

namespace p2pfl::bench {

/// Minimal --key=value / --flag argument parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string get(const std::string& key, const std::string& def) const {
    const std::string flag = "--" + key;
    const std::string prefix = flag + "=";
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& a = args_[i];
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
      // Also accept the space-separated form: `--key value`.
      if (a == flag && i + 1 < args_.size() &&
          args_[i + 1].rfind("--", 0) != 0) {
        return args_[i + 1];
      }
    }
    return def;
  }

  long get_int(const std::string& key, long def) const {
    const std::string v = get(key, "");
    return v.empty() ? def : std::strtol(v.c_str(), nullptr, 10);
  }

  double get_double(const std::string& key, double def) const {
    const std::string v = get(key, "");
    return v.empty() ? def : std::strtod(v.c_str(), nullptr);
  }

  bool has(const std::string& key) const {
    const std::string flag = "--" + key;
    const std::string prefix = flag + "=";
    for (const auto& a : args_) {
      if (a == flag || a.rfind(prefix, 0) == 0) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// Table I stand-in: the simulated evaluation environment.
inline void print_environment(const char* experiment) {
  std::printf("== %s ==\n", experiment);
  std::printf(
      "environment: discrete-event simulation (deterministic), "
      "link latency 15 ms (tc-netem equivalent), hw threads %u\n",
      std::thread::hardware_concurrency());
}

/// Per-reason drop table, mirroring the obs `net.dropped.*` counters.
inline void print_drop_table(
    const std::map<std::string, std::uint64_t>& drops) {
  if (drops.empty()) {
    std::printf("drops by reason: none\n");
    return;
  }
  std::printf("drops by reason:\n");
  for (const auto& [reason, count] : drops) {
    std::printf("  %-16s %10llu\n", reason.c_str(),
                static_cast<unsigned long long>(count));
  }
}

/// Aggregate traffic counters plus the drop table.
inline void print_traffic(const net::TrafficStats& stats) {
  std::printf(
      "traffic: sent %llu msgs / %llu bytes, delivered %llu msgs / %llu "
      "bytes\n",
      static_cast<unsigned long long>(stats.sent.messages),
      static_cast<unsigned long long>(stats.sent.bytes),
      static_cast<unsigned long long>(stats.delivered.messages),
      static_cast<unsigned long long>(stats.delivered.bytes));
  print_drop_table(stats.dropped_by_reason);
}

}  // namespace p2pfl::bench
