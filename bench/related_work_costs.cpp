// §II context: communication cost per aggregation of the related systems
// the paper positions itself against, next to this system. Per-round
// |w|-unit models (see analysis/cost_model.hpp for each derivation);
// the qualitative columns summarize the trade each design makes.
#include <cmath>
#include <cstdio>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t max_n =
      static_cast<std::size_t>(args.get_int("max-peers", 50));
  const analysis::ModelSize w;

  bench::print_environment("related work — cost per aggregation (Gb)");
  std::printf("%4s %12s %12s %12s %12s %14s %16s\n", "N", "1-layer SAC",
              "BrainTorrent", "CCS17 srv", "Turbo-Agg", "ours (3-3)",
              "ours ft (2-3)");
  for (std::size_t N = 10; N <= max_n; N += 10) {
    const auto groups = analysis::subgroups_by_target_size(N, 3);
    std::printf("%4zu %12.2f %12.2f %12.2f %12.2f %14.2f %16.2f\n", N,
                w.gigabits_for(analysis::one_layer_sac_cost(N)),
                w.gigabits_for(analysis::braintorrent_cost(N)),
                w.gigabits_for(analysis::ccs17_server_cost(N)),
                w.gigabits_for(analysis::turbo_aggregate_cost(N)),
                w.gigabits_for(analysis::two_layer_ft_cost(groups, 3, 3)),
                w.gigabits_for(analysis::two_layer_ft_cost(groups, 3, 2)));
  }
  std::printf(
      "\nproperties:\n"
      "  one-layer SAC  : P2P, model-private, O(N^2), aborts on dropout\n"
      "  BrainTorrent   : P2P, models EXPOSED to the center, O(N)\n"
      "  CCS'17 server  : centralized server (single point of failure),\n"
      "                   model-private, O(N) in |w| (+O(N^2) key scalars)\n"
      "  Turbo-Aggregate: server-coordinated groups, model-private,\n"
      "                   O(N log N), 50%% dropout tolerance\n"
      "  ours           : P2P, model-private, O(nN), per-subgroup dropout\n"
      "                   tolerance + Raft-backed leader recovery\n");
  return 0;
}
