// Fig. 6: test accuracy of the two-layer SAC vs the one-layer SAC
// baseline. N = 10 peers, subgroups of n = 3, 5, 10 (n = 10 is the
// original SAC), under IID / Non-IID(5%) / Non-IID(0%) data.
//
// The paper's claim to reproduce: the curves for different n coincide
// (differences < ~2%), and IID > Non-IID(5%) > Non-IID(0%).
#include <cstdio>

#include "bench/fl_series_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  bench::print_environment("Fig. 6 — two-layer SAC vs baseline, test accuracy");

  const core::FlExperimentConfig base = bench::base_config_from_args(args);
  std::vector<bench::SeriesResult> series;
  for (const auto dist : bench::all_distributions()) {
    for (const std::size_t n : {3u, 5u, 10u}) {
      core::FlExperimentConfig cfg = base;
      cfg.distribution = dist;
      if (n >= cfg.peers) {
        cfg.aggregation = core::AggregationKind::kOneLayerSac;  // baseline
      } else {
        cfg.aggregation = core::AggregationKind::kTwoLayerSac;
        cfg.group_size = n;
      }
      const std::string label = std::string(core::distribution_name(dist)) +
                                (n >= cfg.peers ? " baseline(n=N)"
                                                : " n=" + std::to_string(n));
      std::fprintf(stderr, "running %s...\n", label.c_str());
      series.push_back(bench::run_series(cfg, label));
    }
  }
  bench::print_series(series, /*accuracy=*/true);

  // The headline comparison: per distribution, max accuracy spread
  // across n must stay small (paper: < 2% in most cases).
  std::printf("\naccuracy spread across n per distribution:\n");
  for (std::size_t d = 0; d < 3; ++d) {
    double lo = 1.0, hi = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      const double a = series[d * 3 + i].final_accuracy;
      lo = std::min(lo, a);
      hi = std::max(hi, a);
    }
    std::printf("  %-12s spread %.2f%%\n",
                core::distribution_name(bench::all_distributions()[d]),
                (hi - lo) * 100.0);
  }
  return 0;
}
