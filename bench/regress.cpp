// Bench regression gate: diff a freshly produced BENCH_*.json against
// the committed baseline with per-metric tolerance bands.
//
//   regress --baseline BENCH_scale.json --fresh build/fresh_scale.json
//   regress --self-test
//
// Every leaf metric of the two documents is classified by the first
// matching rule of the bench's policy table (dotted-path patterns; `*`
// matches one segment, `**` the rest):
//
//   exact — must match to the literal character (the simulator is
//           deterministic, so counts, bytes and virtual times are
//           reproducible bit-for-bit on one toolchain);
//   band  — numeric, |fresh - base| <= max(rel * |base|, abs) (float
//           metrics that may move across compilers/FPU paths);
//   perf  — wall-clock throughput: machine-dependent, so drift outside
//           the band only warns (GitHub `::warning` annotation) unless
//           --strict-perf promotes it to a failure;
//   ignore — never compared.
//
// A metric missing from either side, a schema_version mismatch or a
// `bench` name mismatch always fails. Exit codes: 0 pass, 1 regression,
// 2 usage/unreadable/unparseable input. `--self-test` runs the gate
// against built-in documents, asserting it passes an identical pair and
// catches out-of-band perturbations (CI runs this as a ctest entry).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/json_util.hpp"
#include "common/json.hpp"

namespace {

using namespace p2pfl;

enum class MetricClass { kExact, kBand, kPerf, kIgnore };

struct MetricRule {
  const char* pattern;
  MetricClass cls = MetricClass::kExact;
  double rel = 0.0;  ///< band half-width relative to |baseline|
  double abs = 0.0;  ///< band half-width floor
};

/// Perf bands are generous: CI machines differ, the annotation is a
/// trend signal, not a gate (unless --strict-perf).
constexpr double kPerfRel = 0.60;

const std::vector<MetricRule>& rules_for(const std::string& bench) {
  static const std::vector<MetricRule> kScale = {
      {"wall_s", MetricClass::kPerf, kPerfRel, 0.0},
      {"peers_per_sec", MetricClass::kPerf, kPerfRel, 0.0},
      {"events_per_sec", MetricClass::kPerf, kPerfRel, 0.0},
      {"wire_bytes_per_sec", MetricClass::kPerf, kPerfRel, 0.0},
      {"micro.ops", MetricClass::kExact},
      {"micro.**", MetricClass::kPerf, kPerfRel, 0.0},
      // n, groups, rounds, completed, sim_ms, events, wire_bytes,
      // pool slots: deterministic -> exact.
      {"**", MetricClass::kExact},
  };
  static const std::vector<MetricRule> kAttack = {
      {"clean.*", MetricClass::kBand, 0.0, 0.02},
      {"cells.*.accuracy", MetricClass::kBand, 0.0, 0.02},
      {"cells.*.test_loss", MetricClass::kBand, 0.10, 0.01},
      // Geometry, seeds, byzantine_peers, gate verdicts: exact.
      {"**", MetricClass::kExact},
  };
  static const std::vector<MetricRule> kDefault = {
      {"**", MetricClass::kBand, 0.05, 1e-9},
  };
  if (bench == "scale_sweep") return kScale;
  if (bench == "attack_sweep") return kAttack;
  return kDefault;
}

bool segment_match(std::string_view pat, std::string_view seg) {
  return pat == "*" || pat == seg;
}

/// Dotted-path glob: `*` one segment, `**` everything from here on.
bool path_match(std::string_view pattern, std::string_view path) {
  while (true) {
    const std::size_t pdot = pattern.find('.');
    const std::string_view pseg = pattern.substr(0, pdot);
    if (pseg == "**") return true;
    const std::size_t sdot = path.find('.');
    const std::string_view sseg = path.substr(0, sdot);
    if (!segment_match(pseg, sseg)) return false;
    const bool pend = pdot == std::string_view::npos;
    const bool send = sdot == std::string_view::npos;
    if (pend || send) return pend && send;
    pattern = pattern.substr(pdot + 1);
    path = path.substr(sdot + 1);
  }
}

struct Leaf {
  std::string path;
  const json::Value* value;
};

void flatten(const json::Value& v, const std::string& prefix,
             std::vector<Leaf>& out) {
  if (v.is_object()) {
    for (const auto& [k, child] : v.object) {
      flatten(child, prefix.empty() ? k : prefix + "." + k, out);
    }
  } else if (v.is_array()) {
    for (std::size_t i = 0; i < v.array.size(); ++i) {
      flatten(v.array[i], prefix + "." + std::to_string(i), out);
    }
  } else {
    out.push_back({prefix, &v});
  }
}

std::string scalar_text(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kNull:
      return "null";
    case json::Value::Kind::kBool:
      return v.boolean ? "true" : "false";
    default:
      return v.text;
  }
}

struct GateResult {
  std::size_t compared = 0;
  std::vector<std::string> failures;
  std::vector<std::string> warnings;
};

/// Compare two parsed documents under the bench's policy table.
GateResult diff_documents(const json::Value& baseline,
                          const json::Value& fresh, bool strict_perf) {
  GateResult res;
  const json::Value* bname = baseline.get("bench");
  const json::Value* fname = fresh.get("bench");
  if (bname == nullptr || fname == nullptr || bname->text != fname->text) {
    res.failures.push_back("bench name mismatch between documents");
    return res;
  }
  const json::Value* bver = baseline.get("schema_version");
  const json::Value* fver = fresh.get("schema_version");
  if (bver == nullptr || fver == nullptr || bver->text != fver->text) {
    res.failures.push_back(
        "schema_version mismatch (regenerate the committed baseline)");
    return res;
  }
  const std::vector<MetricRule>& rules = rules_for(bname->text);

  std::vector<Leaf> base_leaves;
  flatten(baseline, "", base_leaves);
  std::vector<Leaf> fresh_leaves;
  flatten(fresh, "", fresh_leaves);
  auto find_leaf = [](const std::vector<Leaf>& leaves,
                      const std::string& path) -> const json::Value* {
    for (const Leaf& l : leaves) {
      if (l.path == path) return l.value;
    }
    return nullptr;
  };
  auto rule_of = [&](const std::string& path) -> const MetricRule& {
    for (const MetricRule& r : rules) {
      if (path_match(r.pattern, path)) return r;
    }
    static const MetricRule kExactFallback{"**", MetricClass::kExact};
    return kExactFallback;
  };
  char line[512];

  // Walk the baseline (coverage), then catch fresh-only additions.
  for (const Leaf& l : base_leaves) {
    const MetricRule& rule = rule_of(l.path);
    if (rule.cls == MetricClass::kIgnore) continue;
    const json::Value* f = find_leaf(fresh_leaves, l.path);
    ++res.compared;
    if (f == nullptr) {
      res.failures.push_back(l.path + ": missing from fresh run");
      continue;
    }
    const bool both_numbers = l.value->is_number() && f->is_number();
    switch (rule.cls) {
      case MetricClass::kExact:
        if (scalar_text(*l.value) != scalar_text(*f)) {
          std::snprintf(line, sizeof line, "%s: exact mismatch (%s -> %s)",
                        l.path.c_str(), scalar_text(*l.value).c_str(),
                        scalar_text(*f).c_str());
          res.failures.push_back(line);
        }
        break;
      case MetricClass::kBand:
      case MetricClass::kPerf: {
        if (!both_numbers) {
          if (scalar_text(*l.value) != scalar_text(*f)) {
            res.failures.push_back(l.path + ": non-numeric mismatch");
          }
          break;
        }
        const double base = l.value->number;
        const double delta = f->number - base;
        const double band =
            std::max(rule.rel * std::abs(base), rule.abs);
        if (std::abs(delta) <= band) break;
        std::snprintf(line, sizeof line,
                      "%s: %.6g -> %.6g (delta %+.6g, band +/-%.6g)",
                      l.path.c_str(), base, f->number, delta, band);
        if (rule.cls == MetricClass::kPerf && !strict_perf) {
          res.warnings.push_back(line);
        } else {
          res.failures.push_back(line);
        }
        break;
      }
      case MetricClass::kIgnore:
        break;
    }
  }
  for (const Leaf& l : fresh_leaves) {
    if (rule_of(l.path).cls == MetricClass::kIgnore) continue;
    if (find_leaf(base_leaves, l.path) == nullptr) {
      res.failures.push_back(
          l.path + ": new metric absent from the committed baseline");
    }
  }
  return res;
}

std::string read_file(const std::string& path, bool& ok) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    ok = false;
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, got);
  }
  std::fclose(f);
  ok = true;
  return out;
}

int report(const char* label, const GateResult& res) {
  for (const std::string& w : res.warnings) {
    // GitHub annotation: visible on the run page without failing it.
    std::printf("::warning title=bench-regress::%s %s\n", label, w.c_str());
  }
  for (const std::string& f : res.failures) {
    std::fprintf(stderr, "regress: %s: FAIL %s\n", label, f.c_str());
  }
  std::printf(
      "regress: %s: %zu metric(s) compared, %zu failure(s), %zu perf "
      "warning(s)\n",
      label, res.compared, res.failures.size(), res.warnings.size());
  return res.failures.empty() ? 0 : 1;
}

/// Built-in documents exercising every rule class; asserts the gate
/// passes an identical pair and flags each perturbation kind.
int self_test() {
  const char* base_text =
      "{\"bench\":\"scale_sweep\",\"schema_version\":1,\"n\":1000,"
      "\"wall_s\":2.5,\"events\":12345,\"wire_bytes\":678,"
      "\"micro\":{\"ops\":1000,\"wheel\":{\"schedule_fire_per_sec\":9e6}}}";
  json::ParseError err;
  const auto base = json::parse(base_text, &err);
  if (!base) {
    std::fprintf(stderr, "self-test: baseline parse failed: %s\n",
                 err.message.c_str());
    return 1;
  }
  std::size_t checks = 0, bad = 0;
  auto expect = [&](const char* what, bool cond) {
    ++checks;
    if (!cond) {
      ++bad;
      std::fprintf(stderr, "self-test: FAIL %s\n", what);
    }
  };

  // Identical documents pass.
  expect("identical pair passes",
         diff_documents(*base, *base, false).failures.empty());

  auto perturbed = [&](const char* text) {
    const auto v = json::parse(text);
    return diff_documents(*base, *v, false);
  };
  // Exact metric perturbed -> failure.
  expect("exact drift fails",
         !perturbed("{\"bench\":\"scale_sweep\",\"schema_version\":1,"
                    "\"n\":1000,\"wall_s\":2.5,\"events\":12346,"
                    "\"wire_bytes\":678,\"micro\":{\"ops\":1000,\"wheel\":"
                    "{\"schedule_fire_per_sec\":9e6}}}")
              .failures.empty());
  // Perf metric perturbed beyond the band -> warning, not failure.
  {
    const GateResult r = perturbed(
        "{\"bench\":\"scale_sweep\",\"schema_version\":1,\"n\":1000,"
        "\"wall_s\":9.5,\"events\":12345,\"wire_bytes\":678,"
        "\"micro\":{\"ops\":1000,\"wheel\":{\"schedule_fire_per_sec\":9e6}}}");
    expect("perf drift soft-fails", r.failures.empty() && !r.warnings.empty());
  }
  // Same perturbation under --strict-perf -> failure.
  {
    const auto v = json::parse(
        "{\"bench\":\"scale_sweep\",\"schema_version\":1,\"n\":1000,"
        "\"wall_s\":9.5,\"events\":12345,\"wire_bytes\":678,"
        "\"micro\":{\"ops\":1000,\"wheel\":{\"schedule_fire_per_sec\":9e6}}}");
    expect("strict perf fails",
           !diff_documents(*base, *v, true).failures.empty());
  }
  // Missing metric -> failure.
  expect("missing metric fails",
         !perturbed("{\"bench\":\"scale_sweep\",\"schema_version\":1,"
                    "\"n\":1000,\"wall_s\":2.5,\"events\":12345,"
                    "\"micro\":{\"ops\":1000,\"wheel\":"
                    "{\"schedule_fire_per_sec\":9e6}}}")
              .failures.empty());
  // Schema bump -> failure with regeneration hint.
  expect("schema mismatch fails",
         !perturbed("{\"bench\":\"scale_sweep\",\"schema_version\":2,"
                    "\"n\":1000,\"wall_s\":2.5,\"events\":12345,"
                    "\"wire_bytes\":678,\"micro\":{\"ops\":1000,\"wheel\":"
                    "{\"schedule_fire_per_sec\":9e6}}}")
              .failures.empty());

  // Band rules: attack cells move inside the band, fail outside it.
  const auto abase = json::parse(
      "{\"bench\":\"attack_sweep\",\"schema_version\":1,\"gate\":"
      "{\"checked\":4,\"failed\":0},\"clean\":{\"mean\":0.9},\"cells\":"
      "[{\"attack\":\"sign_flip\",\"defense\":\"mean\",\"accuracy\":0.30}]}");
  const auto a_in = json::parse(
      "{\"bench\":\"attack_sweep\",\"schema_version\":1,\"gate\":"
      "{\"checked\":4,\"failed\":0},\"clean\":{\"mean\":0.9},\"cells\":"
      "[{\"attack\":\"sign_flip\",\"defense\":\"mean\",\"accuracy\":0.31}]}");
  const auto a_out = json::parse(
      "{\"bench\":\"attack_sweep\",\"schema_version\":1,\"gate\":"
      "{\"checked\":4,\"failed\":0},\"clean\":{\"mean\":0.9},\"cells\":"
      "[{\"attack\":\"sign_flip\",\"defense\":\"mean\",\"accuracy\":0.40}]}");
  expect("in-band accuracy passes",
         diff_documents(*abase, *a_in, false).failures.empty());
  expect("out-of-band accuracy fails",
         !diff_documents(*abase, *a_out, false).failures.empty());

  std::printf("regress --self-test: %zu check(s), %zu failure(s)\n", checks,
              bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  if (args.has("self-test")) return self_test();

  const std::string baseline_path = args.get("baseline", "");
  const std::string fresh_path = args.get("fresh", "");
  if (baseline_path.empty() || fresh_path.empty()) {
    std::fprintf(stderr,
                 "usage: regress --baseline FILE --fresh FILE "
                 "[--strict-perf] | regress --self-test\n");
    return 2;
  }
  bool ok = false;
  const std::string base_text = read_file(baseline_path, ok);
  if (!ok) {
    std::fprintf(stderr, "regress: cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  const std::string fresh_text = read_file(fresh_path, ok);
  if (!ok) {
    std::fprintf(stderr, "regress: cannot read %s\n", fresh_path.c_str());
    return 2;
  }
  json::ParseError err;
  const auto base = json::parse(base_text, &err);
  if (!base) {
    std::fprintf(stderr, "regress: %s: parse error at %zu: %s\n",
                 baseline_path.c_str(), err.offset, err.message.c_str());
    return 2;
  }
  err = {};
  const auto fresh = json::parse(fresh_text, &err);
  if (!fresh) {
    std::fprintf(stderr, "regress: %s: parse error at %zu: %s\n",
                 fresh_path.c_str(), err.offset, err.message.c_str());
    return 2;
  }
  const json::Value* bname = base->get("bench");
  const GateResult res =
      diff_documents(*base, *fresh, args.has("strict-perf"));
  return report(bname != nullptr ? bname->text.c_str() : "?", res);
}
