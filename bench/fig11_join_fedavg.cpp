// Fig. 11: time to detect a crashed subgroup leader, elect a successor,
// AND have that successor join the FedAvg layer (§V-A1 post-election
// callback + §VII-D membership change). Same setting as Fig. 10.
// Paper averages exceed Fig. 10 by 122.98 / 125.80 / 144.70 / 166.09 ms.
#include <cstdio>

#include "bench/raft_recovery_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(args.get_int("trials", 200));
  bench::print_environment(
      "Fig. 11 — subgroup leader recovery + FedAvg-layer join");
  std::printf("N=25, 5 subgroups, %zu trials per timeout setting\n\n",
              trials);

  const double paper_extra[] = {122.98, 125.80, 144.70, 166.09};
  std::printf("%12s %10s %10s %12s %10s %10s %10s %16s\n", "timeout",
              "elect ms", "join ms", "join-elect", "p50 join", "p95 join",
              "p99 join", "paper join-elect");
  int idx = 0;
  for (const SimDuration t : bench::timeout_settings()) {
    std::vector<double> elect, join;
    for (std::size_t i = 0; i < trials; ++i) {
      const auto r = bench::run_recovery_trial(
          bench::CrashKind::kSubgroupLeader, t, 0x2000 + i * 104729 + idx);
      if (r.ok) {
        elect.push_back(r.elect_ms);
        join.push_back(r.join_ms);
      }
    }
    const auto se = bench::summarize(elect);
    const auto sj = bench::summarize(join);
    std::printf(
        "%5lld-%lldms %10.2f %10.2f %12.2f %10.2f %10.2f %10.2f %16.2f\n",
        static_cast<long long>(t / kMillisecond),
        static_cast<long long>(2 * t / kMillisecond), se.mean, sj.mean,
        sj.mean - se.mean, sj.p50, sj.p95, sj.p99, paper_extra[idx]);
    ++idx;
  }
  std::printf("\njoin time distribution (T = 50ms):\n");
  std::vector<double> join50;
  for (std::size_t i = 0; i < trials; ++i) {
    const auto r = bench::run_recovery_trial(
        bench::CrashKind::kSubgroupLeader, 50 * kMillisecond,
        0x3000 + i * 31);
    if (r.ok) join50.push_back(r.join_ms);
  }
  bench::print_histogram(join50, 50.0);

  // One fully traced trial for offline inspection of the join sequence.
  bench::run_recovery_trial(bench::CrashKind::kSubgroupLeader,
                            50 * kMillisecond, 0x2000, 25, 5,
                            args.get("trace-out", "fig11"));
  return 0;
}
