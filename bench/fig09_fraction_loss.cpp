// Fig. 9: training loss under slow subgroups (same setting as Fig. 8:
// N = 20, n = 5, p = 0.5 vs 1.0).
#include <cstdio>

#include "bench/fl_series_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  bench::print_environment("Fig. 9 — slow-subgroup fraction, training loss");

  core::FlExperimentConfig base = bench::base_config_from_args(args);
  base.peers = static_cast<std::size_t>(args.get_int("peers", 20));
  base.group_size = static_cast<std::size_t>(args.get_int("n", 5));
  base.aggregation = core::AggregationKind::kTwoLayerSac;
  base.data.train_samples = static_cast<std::size_t>(
      args.get_int("samples", 4000));

  std::vector<bench::SeriesResult> series;
  for (const auto dist : bench::all_distributions()) {
    for (const double p : {1.0, 0.5}) {
      core::FlExperimentConfig cfg = base;
      cfg.distribution = dist;
      cfg.fraction_p = p;
      char label[64];
      std::snprintf(label, sizeof label, "%s p=%.1f",
                    core::distribution_name(dist), p);
      std::fprintf(stderr, "running %s...\n", label);
      series.push_back(bench::run_series(cfg, label));
    }
  }
  bench::print_series(series, /*accuracy=*/false);
  return 0;
}
