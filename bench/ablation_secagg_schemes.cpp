// Ablation: the four secret-sharing / masking schemes implemented in
// this repo, compared on one axis the paper fixes by design choice:
//
//   * proportional (Alg. 1, the paper's scheme)  — float fractions;
//   * uniform additive mask                      — float noise shares;
//   * ring Z_{2^64} fixed point                  — classical additive
//     sharing with information-theoretic share privacy;
//   * pairwise masking (Bonawitz/CCS'17)         — the server-based
//     related-work scheme.
//
// Reported per scheme: reconstruction error of the aggregate vs the
// exact mean, a share-privacy proxy (|Pearson correlation| between
// share elements and secret elements — high means the share leaks the
// model), and throughput of the split + aggregate pipeline via
// google-benchmark.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "secagg/pairwise_mask.hpp"
#include "secagg/ring.hpp"
#include "secagg/sac.hpp"

namespace {

using namespace p2pfl;
using secagg::Vector;

Vector random_model(std::size_t dim, Rng& rng) {
  Vector v(dim);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, 0.5));
  return v;
}

double correlation(std::span<const float> a, std::span<const float> b) {
  const std::size_t n = a.size();
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va == 0 || vb == 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double max_abs_err(const Vector& a, const Vector& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i] - b[i])));
  }
  return worst;
}

void report_accuracy_and_leakage() {
  const std::size_t n = 10, dim = 4096;
  Rng rng(42);
  std::vector<Vector> models;
  for (std::size_t i = 0; i < n; ++i) models.push_back(random_model(dim, rng));
  Vector exact(dim, 0.0f);
  for (const auto& m : models) {
    for (std::size_t e = 0; e < dim; ++e) exact[e] += m[e];
  }
  for (float& v : exact) v /= static_cast<float>(n);

  std::printf("scheme              agg max-err     share/secret |corr|\n");

  {
    secagg::SplitOptions opts;
    opts.scheme = secagg::SplitScheme::kProportional;
    const Vector avg = secagg::sac_average(models, rng, opts);
    const auto shares = secagg::divide(models[0], n, rng, opts);
    std::printf("proportional (Alg.1)  %9.2e     %18.3f\n",
                max_abs_err(avg, exact),
                std::abs(correlation(shares[0], models[0])));
  }
  {
    secagg::SplitOptions opts;
    opts.scheme = secagg::SplitScheme::kUniformMask;
    opts.mask_range = 1.0;
    const Vector avg = secagg::sac_average(models, rng, opts);
    const auto shares = secagg::divide(models[0], n, rng, opts);
    std::printf("uniform mask          %9.2e     %18.3f\n",
                max_abs_err(avg, exact),
                std::abs(correlation(shares[0], models[0])));
  }
  {
    const Vector avg = secagg::ring_sac_average(models, rng);
    const auto ring_shares =
        secagg::ring_divide(secagg::RingCodec().encode(models[0]), n, rng);
    // Map a ring share back to floats for the correlation proxy.
    Vector as_float(dim);
    for (std::size_t e = 0; e < dim; ++e) {
      as_float[e] = static_cast<float>(
          static_cast<double>(
              static_cast<std::int64_t>(ring_shares[0][e])) /
          secagg::RingCodec().scale());
    }
    std::printf("ring Z_2^64           %9.2e     %18.3f\n",
                max_abs_err(avg, exact),
                std::abs(correlation(as_float, models[0])));
  }
  {
    secagg::PairwiseMasker pm(n, 7, /*mask_range=*/5.0);
    std::vector<Vector> masked;
    std::vector<std::size_t> all;
    for (std::size_t u = 0; u < n; ++u) {
      masked.push_back(pm.mask(u, models[u]));
      all.push_back(u);
    }
    Vector sum = pm.unmask_sum(masked, all, {});
    for (float& v : sum) v /= static_cast<float>(n);
    std::printf("pairwise mask (CCS17) %9.2e     %18.3f\n",
                max_abs_err(sum, exact),
                std::abs(correlation(masked[0], models[0])));
  }
  std::printf(
      "\n(proportional shares correlate ~1 with the secret — each share is "
      "a scaled model\ncopy; mask/ring schemes leak nothing per share. The "
      "paper keeps Alg. 1 for\nsimplicity; this library lets deployments "
      "pick the ring scheme instead.)\n\n");
}

// --- throughput ---------------------------------------------------------------

void BM_DivideProportional(benchmark::State& state) {
  Rng rng(1);
  const Vector model = random_model(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::divide(model, 10, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_DivideProportional)->Arg(1 << 12)->Arg(1 << 16);

void BM_DivideUniformMask(benchmark::State& state) {
  Rng rng(1);
  secagg::SplitOptions opts;
  opts.scheme = secagg::SplitScheme::kUniformMask;
  const Vector model = random_model(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::divide(model, 10, rng, opts));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_DivideUniformMask)->Arg(1 << 12)->Arg(1 << 16);

void BM_RingDivide(benchmark::State& state) {
  Rng rng(1);
  const Vector model = random_model(static_cast<std::size_t>(state.range(0)), rng);
  const auto encoded = secagg::RingCodec().encode(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::ring_divide(encoded, 10, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 8);
}
BENCHMARK(BM_RingDivide)->Arg(1 << 12)->Arg(1 << 16);

void BM_PairwiseMask(benchmark::State& state) {
  Rng rng(1);
  const Vector model = random_model(static_cast<std::size_t>(state.range(0)), rng);
  secagg::PairwiseMasker pm(10, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.mask(0, model));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_PairwiseMask)->Arg(1 << 12)->Arg(1 << 16);

void BM_SacAverage10Peers(benchmark::State& state) {
  Rng rng(1);
  std::vector<Vector> models;
  for (int i = 0; i < 10; ++i) {
    models.push_back(random_model(static_cast<std::size_t>(state.range(0)), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::sac_average(models, rng));
  }
}
BENCHMARK(BM_SacAverage10Peers)->Arg(1 << 12);

void BM_RingSacAverage10Peers(benchmark::State& state) {
  Rng rng(1);
  std::vector<Vector> models;
  for (int i = 0; i < 10; ++i) {
    models.push_back(random_model(static_cast<std::size_t>(state.range(0)), rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(secagg::ring_sac_average(models, rng));
  }
}
BENCHMARK(BM_RingSacAverage10Peers)->Arg(1 << 12);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== ablation — secure aggregation schemes ==\n\n");
  report_accuracy_and_leakage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
