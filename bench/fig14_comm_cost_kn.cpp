// Fig. 14: total communication cost per aggregation for different k-n
// settings as the peer count N grows. Settings: 3-3, 3-2, 5-5, 5-3 (our
// two-layer system; "k-n" = k-out-of-n SAC in subgroups of n) and the
// n = N one-layer SAC baseline. The closed-form model is printed next
// to bytes counted by simulating the real protocol.
#include <cstdio>
#include <vector>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"
#include "bench/obs_util.hpp"
#include "core/agg_cost_sim.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  const std::size_t max_n =
      static_cast<std::size_t>(args.get_int("max-peers", 50));
  const analysis::ModelSize w;

  bench::print_environment("Fig. 14 — communication cost per k-n setting");
  std::printf("|w| = %.0f Mb; columns are Gb per aggregation "
              "(model / simulated)\n\n",
              w.megabits());

  struct Setting {
    std::size_t n, k;
  };
  const std::vector<Setting> settings{{3, 3}, {3, 2}, {5, 5}, {5, 3}};

  std::printf("%4s %14s", "N", "baseline(n=N)");
  for (const auto& s : settings) std::printf("      %zu-%zu (mdl/sim)", s.k, s.n);
  std::printf("\n");

  for (std::size_t N = 10; N <= max_n; N += 10) {
    std::printf("%4zu %14.2f", N,
                w.gigabits_for(analysis::one_layer_sac_cost(N)));
    for (const auto& s : settings) {
      const auto groups = analysis::subgroups_by_target_size(N, s.n);
      const double model_units =
          analysis::two_layer_ft_cost(groups, s.n, s.k);
      const double sim_units =
          core::simulate_aggregation_cost_units(groups, s.n - s.k);
      std::printf("      %7.2f/%7.2f", w.gigabits_for(model_units),
                  w.gigabits_for(sim_units));
    }
    std::printf("\n");
  }

  std::printf("\nheadline ratios vs the baseline (paper values in "
              "parentheses):\n");
  struct Headline {
    std::size_t n, k, N;
    double paper;
  };
  for (const auto& h : std::vector<Headline>{{3, 3, 20, 8.84},
                                             {3, 3, 30, 14.75},
                                             {3, 2, 30, 10.36},
                                             {5, 3, 30, 4.29},
                                             {3, 3, 50, 23.80}}) {
    const auto groups = analysis::subgroups_by_target_size(h.N, h.n);
    const double ratio = analysis::one_layer_sac_cost(h.N) /
                         analysis::two_layer_ft_cost(groups, h.n, h.k);
    std::printf("  %zu-%zu, N=%2zu: %6.2fx (paper %.2fx)\n", h.k, h.n, h.N,
                ratio, h.paper);
  }

  // Traced + metered re-run of the 3-2, N=30 round (a setting with live
  // dropout tolerance) for offline inspection.
  const std::string base = args.get("trace-out", "fig14");
  core::AggSimHooks hooks;
  hooks.on_start = [](sim::Simulator& s) { s.obs().trace.set_enabled(true); };
  hooks.on_finish = [&](sim::Simulator& s) {
    bench::export_observability(s, base);
  };
  const auto traced_groups = analysis::subgroups_by_target_size(30, 3);
  core::simulate_aggregation_cost(traced_groups, 1, hooks);
  return 0;
}
