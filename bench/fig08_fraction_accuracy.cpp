// Fig. 8: resilience to slow subgroups — test accuracy when the FedAvg
// leader aggregates only a fraction p of the subgroup models (N = 20,
// n = 5, p = 0.5 vs 1.0) under the three data distributions.
//
// Claim to reproduce: p = 0.5 tracks p = 1 closely (paper: average gap
// 2.18% across distributions).
#include <cmath>
#include <cstdio>

#include "bench/fl_series_common.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);
  bench::print_environment("Fig. 8 — slow-subgroup fraction, test accuracy");

  core::FlExperimentConfig base = bench::base_config_from_args(args);
  base.peers = static_cast<std::size_t>(args.get_int("peers", 20));
  base.group_size = static_cast<std::size_t>(args.get_int("n", 5));
  base.aggregation = core::AggregationKind::kTwoLayerSac;
  base.data.train_samples = static_cast<std::size_t>(
      args.get_int("samples", 4000));

  std::vector<bench::SeriesResult> series;
  for (const auto dist : bench::all_distributions()) {
    for (const double p : {1.0, 0.5}) {
      core::FlExperimentConfig cfg = base;
      cfg.distribution = dist;
      cfg.fraction_p = p;
      char label[64];
      std::snprintf(label, sizeof label, "%s p=%.1f",
                    core::distribution_name(dist), p);
      std::fprintf(stderr, "running %s...\n", label);
      series.push_back(bench::run_series(cfg, label));
    }
  }
  bench::print_series(series, /*accuracy=*/true);

  double gap_sum = 0.0;
  for (std::size_t d = 0; d < 3; ++d) {
    const double full = series[d * 2].final_accuracy;
    const double half = series[d * 2 + 1].final_accuracy;
    gap_sum += std::abs(full - half);
  }
  std::printf("\naverage |acc(p=1) - acc(p=0.5)| over distributions: %.2f%% "
              "(paper: 2.18%%)\n",
              gap_sum / 3.0 * 100.0);
  return 0;
}
