// Byzantine attack sweep: accuracy vs Byzantine fraction for each
// attack x defense pair (the robustness tentpole's headline evidence).
//
// Runs the math-path federated experiment (core/fl_experiment) with a
// byzantine_fraction of peers captured subgroup-by-subgroup, under each
// model-poisoning / lying-aggregator attack, defended by each FedAvg-
// layer robust rule, and emits a machine-readable JSON grid
// (BENCH_attack.json at the repo root by default, scale_sweep-style).
//
// The run doubles as its own acceptance test: with 20% Byzantine peers
// under sign_flip and scaled_update, naive mean must visibly degrade
// (accuracy drop > --gate-drop vs its clean run) while trimmed mean and
// median must stay within --gate-drop of theirs — otherwise the
// process exits nonzero. CI runs `attack_sweep --quick` as a smoke.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/fl_series_common.hpp"
#include "bench/json_util.hpp"
#include "core/fl_experiment.hpp"
#include "robust/attack.hpp"
#include "robust/rules.hpp"

namespace {

using namespace p2pfl;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

struct Cell {
  robust::AttackKind attack = robust::AttackKind::kNone;
  robust::RobustRule defense = robust::RobustRule::kMean;
  double fraction = 0.0;
  double accuracy = 0.0;
  double test_loss = 0.0;
  std::size_t byzantine_peers = 0;
};

Cell run_cell(core::FlExperimentConfig cfg, robust::AttackKind attack,
              robust::RobustRule defense, double fraction,
              double magnitude) {
  cfg.byzantine_fraction = fraction;
  cfg.attack.kind = fraction > 0.0 ? attack : robust::AttackKind::kNone;
  cfg.attack.magnitude = magnitude;
  cfg.robust.rule = defense;
  const core::FlExperimentResult r = core::run_fl_experiment(cfg);
  Cell c;
  c.attack = attack;
  c.defense = defense;
  c.fraction = fraction;
  c.accuracy = r.final_accuracy;
  c.test_loss = r.final_test_loss;
  c.byzantine_peers = r.byzantine_peers;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2pfl;
  bench::Args args(argc, argv);

  // Grid geometry: 20 peers in 5 subgroups of 4 means fraction 0.2
  // captures exactly one whole subgroup — the concentrated adversary
  // the FedAvg-layer rules are built for (trim 1-of-5 covers it).
  core::FlExperimentConfig base = bench::base_config_from_args(args);
  base.peers = static_cast<std::size_t>(args.get_int("peers", 20));
  base.subgroups =
      static_cast<std::size_t>(args.get_int("subgroups", 5));
  base.aggregation = core::AggregationKind::kTwoLayerSac;
  base.rounds = static_cast<std::size_t>(
      args.get_int("rounds", args.has("quick") ? 10 : 25));
  base.data.train_samples =
      static_cast<std::size_t>(args.get_int("samples", 2000));
  base.eval_every = base.rounds + 1;  // final accuracy only
  const double magnitude = args.get_double("magnitude", 10.0);
  const double gate_drop = args.get_double("gate-drop", 0.10);
  const std::string out_path =
      args.get("out", P2PFL_REPO_ROOT "/BENCH_attack.json");

  std::vector<robust::AttackKind> attacks;
  for (const std::string& name : split_csv(args.get(
           "attacks", args.has("quick")
                          ? "sign_flip,scaled_update"
                          : "sign_flip,scaled_update,random_noise,"
                            "constant_drift,subtotal_lie"))) {
    robust::AttackKind k;
    if (!robust::attack_from_name(name, k)) {
      std::fprintf(stderr, "attack_sweep: unknown attack %s\n",
                   name.c_str());
      return 2;
    }
    attacks.push_back(k);
  }
  std::vector<robust::RobustRule> defenses;
  for (const std::string& name : split_csv(
           args.get("defenses", "mean,trimmed_mean,median"))) {
    robust::RobustRule r;
    if (!robust::rule_from_name(name, r)) {
      std::fprintf(stderr, "attack_sweep: unknown defense %s\n",
                   name.c_str());
      return 2;
    }
    defenses.push_back(r);
  }
  std::vector<double> fractions;
  for (const std::string& f : split_csv(
           args.get("fractions", args.has("quick") ? "0.2" : "0.1,0.2,0.3"))) {
    fractions.push_back(std::stod(f));
  }

  // Clean baseline per defense (fraction 0, no attack). With kMean this
  // is bit-exact with the historical federated_average run.
  std::vector<Cell> clean;
  for (robust::RobustRule d : defenses) {
    std::fprintf(stderr, "attack_sweep: clean %s ...\n",
                 robust::rule_name(d));
    clean.push_back(
        run_cell(base, robust::AttackKind::kNone, d, 0.0, magnitude));
  }
  auto clean_accuracy = [&](robust::RobustRule d) {
    for (const Cell& c : clean) {
      if (c.defense == d) return c.accuracy;
    }
    return 0.0;
  };

  std::vector<Cell> cells;
  for (robust::AttackKind a : attacks) {
    for (robust::RobustRule d : defenses) {
      for (double f : fractions) {
        std::fprintf(stderr, "attack_sweep: %s vs %s @ %.2f ...\n",
                     robust::attack_name(a), robust::rule_name(d), f);
        cells.push_back(run_cell(base, a, d, f, magnitude));
      }
    }
  }

  // Acceptance gate: at 20% Byzantine, sign_flip/scaled_update must
  // break naive mean and bounce off trimmed mean and median.
  std::size_t gate_checked = 0, gate_failed = 0;
  std::string gate_log;
  for (const Cell& c : cells) {
    const bool gated_attack =
        c.attack == robust::AttackKind::kSignFlip ||
        c.attack == robust::AttackKind::kScaledUpdate;
    if (!gated_attack || c.fraction != 0.2) continue;
    const double drop = clean_accuracy(c.defense) - c.accuracy;
    const bool want_broken = c.defense == robust::RobustRule::kMean;
    const bool ok = want_broken ? drop > gate_drop : drop <= gate_drop;
    ++gate_checked;
    if (!ok) ++gate_failed;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-13s %-12s drop %+.3f (%s, want %s)\n",
                  robust::attack_name(c.attack),
                  robust::rule_name(c.defense), drop, ok ? "ok" : "FAIL",
                  want_broken ? "broken" : "robust");
    gate_log += line;
  }

  bench::JsonWriter w = bench::bench_document("attack_sweep");
  w.field_u64("peers", base.peers)
      .field_u64("subgroups", base.subgroups)
      .field_u64("rounds", base.rounds)
      .field_u64("samples", base.data.train_samples)
      .field_double("magnitude", magnitude, "%.3f")
      .field_u64("seed", base.seed)
      .field_double("gate_drop", gate_drop, "%.3f");
  w.key("clean").object_begin();
  for (const Cell& c : clean) {
    w.field_double(robust::rule_name(c.defense), c.accuracy, "%.4f");
  }
  w.object_end();
  w.key("cells").array_begin();
  for (const Cell& c : cells) {
    w.object_begin()
        .field_str("attack", robust::attack_name(c.attack))
        .field_str("defense", robust::rule_name(c.defense))
        .field_double("fraction", c.fraction, "%.2f")
        .field_u64("byzantine_peers", c.byzantine_peers)
        .field_double("accuracy", c.accuracy, "%.4f")
        .field_double("test_loss", c.test_loss, "%.4f")
        .object_end();
  }
  w.array_end();
  w.key("gate")
      .object_begin()
      .field_u64("checked", gate_checked)
      .field_u64("failed", gate_failed)
      .object_end()
      .object_end();

  if (!gate_log.empty()) {
    std::fprintf(stderr, "attack_sweep gate (fraction 0.2):\n%s",
                 gate_log.c_str());
  }
  const int emit_rc = bench::emit_bench_json(w.str(), out_path, "attack_sweep");
  if (emit_rc != 0) return emit_rc;
  if (gate_failed > 0) {
    std::fprintf(stderr, "attack_sweep: %zu gate check(s) failed\n",
                 gate_failed);
    return 1;
  }
  return 0;
}
