// §VII-D: fault-tolerance thresholds of the two-layer Raft, validated by
// simulation. For each (m subgroups, n peers each) three scenarios:
//
//  * optimistic (paper bound m(⌊(n-1)/2⌋+1)): only followers crash —
//    ⌊(n-1)/2⌋+1 per subgroup. Leaders never face an election, so the
//    system stays operational even though the hardest-hit subgroups can
//    no longer commit new log entries.
//  * leader replacement: a single subgroup leader crashes with the rest
//    of its subgroup intact — must fully recover (elect + rejoin).
//  * fatal: ⌊(m-1)/2⌋+1 subgroup leaders crash simultaneously — the
//    FedAvg layer loses its quorum and cannot admit replacements, so the
//    system must NOT recover (confirming the paper's threshold).
#include <cstdio>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"
#include "bench/raft_recovery_common.hpp"
#include "chaos/engine.hpp"
#include "core/two_layer_raft.hpp"

namespace {

using namespace p2pfl;
using namespace p2pfl::core;

enum class Scenario { kOptimisticFollowers, kLeaderReplacement, kFatal };

struct Outcome {
  bool stabilized_after = false;
  double ms = -1.0;
  /// Per-reason drop counts of this run (accumulated by main into the
  /// sweep-wide drop table).
  std::map<std::string, std::uint64_t> drops;
};

Outcome run_case(std::size_t m, std::size_t n, Scenario scenario,
                 std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 50 * kMillisecond;
  opts.raft.election_timeout_max = 100 * kMillisecond;
  TwoLayerRaftSystem sys(Topology::even(m * n, m), opts, net);
  sys.start_all();
  while (sim.now() < 30 * kSecond && !sys.stabilized()) {
    sim.run_for(20 * kMillisecond);
  }
  if (!sys.stabilized()) return {};

  std::vector<PeerId> victims;
  switch (scenario) {
    case Scenario::kOptimisticFollowers: {
      const std::size_t per_group = (n - 1) / 2 + 1;
      for (SubgroupId g = 0; g < m; ++g) {
        const PeerId leader = sys.subgroup_leader(g);
        std::size_t killed = 0;
        for (PeerId p : sys.topology().group(g)) {
          if (p != leader && killed < per_group) {
            victims.push_back(p);
            ++killed;
          }
        }
      }
      break;
    }
    case Scenario::kLeaderReplacement: {
      const PeerId fed = sys.fedavg_leader();
      for (SubgroupId g = 0; g < m; ++g) {
        const PeerId l = sys.subgroup_leader(g);
        if (l != kNoPeer && l != fed) {
          victims.push_back(l);
          break;
        }
      }
      break;
    }
    case Scenario::kFatal: {
      const std::size_t kill = analysis::fedavg_fatal_leader_crashes(m);
      for (SubgroupId g = 0; g < m && victims.size() < kill; ++g) {
        const PeerId l = sys.subgroup_leader(g);
        if (l != kNoPeer) victims.push_back(l);
      }
      break;
    }
  }

  // Crashes go through a ChaosPlan (executed on the next simulator
  // step), so each case is a replayable (seed, plan) pair.
  const SimTime crash_at = sim.now();
  chaos::ChaosPlan plan;
  for (PeerId v : victims) plan.crash_at(crash_at, v);
  chaos::ChaosEngineHooks hooks;
  hooks.crash = [&sys](PeerId p) { sys.crash_peer(p); };
  chaos::ChaosEngine chaos_engine(net, std::move(plan), hooks);
  chaos_engine.start();

  Outcome out;
  while (sim.now() < crash_at + 30 * kSecond) {
    sim.run_for(20 * kMillisecond);
    if (sys.stabilized()) {
      out.stabilized_after = true;
      out.ms = to_ms(sim.now() - crash_at);
      break;
    }
  }
  out.drops = net.stats().dropped_by_reason;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const std::size_t trials =
      static_cast<std::size_t>(args.get_int("trials", 10));
  bench::print_environment("§VII-D — two-layer Raft fault-tolerance sweep");
  std::printf("%4s %4s %10s | %18s %20s %16s | %28s\n", "m", "n", "opt bound",
              "followers-only ok", "leader-replace ok", "fatal blocked",
              "replace ms p50/p95/p99");
  std::map<std::string, std::uint64_t> total_drops;
  for (std::size_t m : {3u, 5u}) {
    for (std::size_t n : {3u, 5u}) {
      std::size_t opt_ok = 0, repl_ok = 0, fatal_blocked = 0;
      std::vector<double> repl_ms;
      for (std::size_t i = 0; i < trials; ++i) {
        const auto o = run_case(m, n, Scenario::kOptimisticFollowers,
                                0x5000 + i * 13 + m * 7 + n);
        if (o.stabilized_after) ++opt_ok;
        const auto r = run_case(m, n, Scenario::kLeaderReplacement,
                                0x6000 + i * 17 + m * 3 + n);
        if (r.stabilized_after) {
          ++repl_ok;
          repl_ms.push_back(r.ms);
        }
        const auto f =
            run_case(m, n, Scenario::kFatal, 0x7000 + i * 19 + m + n);
        if (!f.stabilized_after) ++fatal_blocked;
        for (const auto* d : {&o.drops, &r.drops, &f.drops}) {
          for (const auto& [reason, count] : *d) {
            total_drops[reason] += count;
          }
        }
      }
      const auto rs = bench::summarize(repl_ms);
      std::printf(
          "%4zu %4zu %10zu | %15zu/%zu %12zu/%zu (%4.0fms) %13zu/%zu | "
          "%8.0f %8.0f %8.0f\n",
          m, n, p2pfl::analysis::two_layer_optimistic_tolerance(m, n),
          opt_ok, trials, repl_ok, trials, repl_ok ? rs.mean : -1.0,
          fatal_blocked, trials, rs.p50, rs.p95, rs.p99);
    }
  }
  std::printf(
      "\nfollowers-only: the §VII-D optimistic bound — every subgroup loses "
      "⌊(n-1)/2⌋+1\nfollowers yet leaders keep serving. leader-replace: one "
      "subgroup leader crash\nfully heals (elect + FedAvg rejoin). fatal: a "
      "FedAvg-layer majority crash cannot\nheal, matching the paper's "
      "⌊(m-1)/2⌋ threshold.\n");
  std::printf("\n");
  p2pfl::bench::print_drop_table(total_drops);
  return 0;
}
