// p2pflctl — command-line front end for the library.
//
//   p2pflctl train    [--peers=N --groups=m|--n=K --dist=iid|noniid5|noniid0]
//                     [--rounds=R --tolerance=F --fraction=P --seed=S]
//                     [--weighted] [--checkpoint=FILE]
//   p2pflctl cost     [--peers=N --n=K --k=K2 --params=P]
//   p2pflctl recovery [--peers=N --groups=m --timeout-ms=T --crash=sub|fed]
//   p2pflctl trace    [--peers=N --groups=m --timeout-ms=T --crash=sub|fed]
//                     [--out=BASE] [--categories=sim,net,raft,agg]
//
// Everything runs on the deterministic simulator; identical flags give
// identical results. `trace` replays the recovery scenario with the
// observability layer on and writes BASE.metrics.jsonl plus
// BASE.trace.json (Chrome trace_event format; open in about://tracing).
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"
#include "bench/obs_util.hpp"
#include "core/fl_experiment.hpp"
#include "core/two_layer_raft.hpp"
#include "fl/checkpoint.hpp"

using namespace p2pfl;

namespace {

int cmd_train(const bench::Args& args) {
  core::FlExperimentConfig cfg;
  cfg.peers = static_cast<std::size_t>(args.get_int("peers", 10));
  cfg.subgroups = static_cast<std::size_t>(args.get_int("groups", 0));
  cfg.group_size = static_cast<std::size_t>(args.get_int("n", 3));
  if (cfg.subgroups > 0) cfg.group_size = 0;
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 50));
  cfg.sac_k = static_cast<std::size_t>(args.get_int("k", 0));
  cfg.fraction_p = args.get_double("fraction", 1.0);
  cfg.dropout_after_share_prob = args.get_double("dropout", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.weight_by_samples = args.has("weighted");
  cfg.eval_every = 5;
  cfg.data = fl::mnist_like();
  cfg.data.noise_scale = args.get_double("noise", 2.0);
  cfg.learning_rate = 1e-3f;

  const std::string dist = args.get("dist", "iid");
  cfg.distribution = dist == "noniid5" ? core::DataDistribution::kNonIid5
                     : dist == "noniid0"
                         ? core::DataDistribution::kNonIid0
                         : core::DataDistribution::kIid;

  std::printf("training: %zu peers, %s, %zu rounds, subgroups of ~%zu\n",
              cfg.peers, core::distribution_name(cfg.distribution),
              cfg.rounds, cfg.group_size);
  const auto result =
      core::run_fl_experiment(cfg, [](const core::RoundRecord& rec) {
        if (rec.test_accuracy) {
          std::printf("  round %4zu  loss %.4f  acc %5.2f%%\n", rec.round,
                      rec.train_loss, *rec.test_accuracy * 100.0);
        }
      });
  std::printf("final: %.2f%% (quorum failures: %zu)\n",
              result.final_accuracy * 100.0,
              result.subgroup_quorum_failures);

  const std::string ckpt = args.get("checkpoint", "");
  if (!ckpt.empty()) {
    if (fl::save_checkpoint(ckpt, result.final_weights)) {
      std::printf("saved final global model (%zu params) to %s\n",
                  result.final_weights.size(), ckpt.c_str());
    } else {
      std::fprintf(stderr, "failed to write checkpoint %s\n", ckpt.c_str());
      return 1;
    }
  }
  return 0;
}

int cmd_cost(const bench::Args& args) {
  const std::size_t N = static_cast<std::size_t>(args.get_int("peers", 30));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 3));
  const std::size_t k =
      static_cast<std::size_t>(args.get_int("k", static_cast<long>(n)));
  const analysis::ModelSize w{
      static_cast<std::uint64_t>(args.get_int("params", 1'250'000))};
  const auto groups = analysis::subgroups_by_target_size(N, n);
  std::printf("N=%zu, %zu subgroups of ~%zu, |w|=%.0f Mb\n", N,
              groups.size(), n, w.megabits());
  std::printf("  one-layer SAC : %8.2f Gb\n",
              w.gigabits_for(analysis::one_layer_sac_cost(N)));
  std::printf("  two-layer %zu-%zu: %8.2f Gb (%.2fx)\n", k, n,
              w.gigabits_for(analysis::two_layer_ft_cost(groups, n, k)),
              analysis::one_layer_sac_cost(N) /
                  analysis::two_layer_ft_cost(groups, n, k));
  std::printf("  plain FedAvg  : %8.2f Gb (no model privacy)\n",
              w.gigabits_for(2.0 * (N - 1)));
  return 0;
}

int cmd_recovery(const bench::Args& args, bool traced = false) {
  const std::size_t peers =
      static_cast<std::size_t>(args.get_int("peers", 25));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 5));
  const SimDuration T = args.get_int("timeout-ms", 150) * kMillisecond;
  const bool crash_fed = args.get("crash", "sub") == "fed";

  sim::Simulator sim(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  if (traced) {
    sim.obs().trace.set_enabled(true);
    // --categories=net,raft limits the stream; default records all.
    std::string cats = args.get("categories", "");
    while (!cats.empty()) {
      const std::size_t comma = cats.find(',');
      sim.obs().trace.enable_category(cats.substr(0, comma));
      cats = comma == std::string::npos ? "" : cats.substr(comma + 1);
    }
  }
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  core::TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = T;
  opts.raft.election_timeout_max = 2 * T;
  core::TwoLayerRaftSystem sys(core::Topology::even(peers, groups), opts,
                               net);
  sys.on_subgroup_leader = [&](SubgroupId g, PeerId p) {
    std::printf("[%7.0fms] subgroup %u elected peer %u\n", to_ms(sim.now()),
                g, p);
  };
  sys.on_fedavg_leader = [&](PeerId p) {
    std::printf("[%7.0fms] FedAvg layer elected peer %u\n", to_ms(sim.now()),
                p);
  };
  sys.on_fedavg_joined = [&](PeerId p) {
    std::printf("[%7.0fms] peer %u (re)joined the FedAvg layer\n",
                to_ms(sim.now()), p);
  };
  sys.start_all();
  while (!sys.stabilized() && sim.now() < 30 * kSecond) {
    sim.run_for(20 * kMillisecond);
  }
  if (!sys.stabilized()) {
    std::printf("failed to stabilize\n");
    return 1;
  }
  const PeerId fed = sys.fedavg_leader();
  PeerId victim = fed;
  if (!crash_fed) {
    for (SubgroupId g = 0; g < groups; ++g) {
      if (sys.subgroup_leader(g) != fed) {
        victim = sys.subgroup_leader(g);
        break;
      }
    }
  }
  std::printf("[%7.0fms] *** crashing %s leader, peer %u ***\n",
              to_ms(sim.now()), crash_fed ? "the FedAvg" : "a subgroup",
              victim);
  const SimTime t0 = sim.now();
  sys.crash_peer(victim);
  while (!sys.stabilized() && sim.now() < t0 + 60 * kSecond) {
    sim.run_for(20 * kMillisecond);
  }
  std::printf("[%7.0fms] system stable again — recovery took %.0f ms\n",
              to_ms(sim.now()), to_ms(sim.now() - t0));
  if (traced) {
    bench::export_observability(sim, args.get("out", "p2pfl"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: p2pflctl <train|cost|recovery|trace> "
                 "[--key=value...]\n");
    return 2;
  }
  const bench::Args args(argc - 1, argv + 1);
  const std::string cmd = argv[1];
  if (cmd == "train") return cmd_train(args);
  if (cmd == "cost") return cmd_cost(args);
  if (cmd == "recovery") return cmd_recovery(args);
  if (cmd == "trace") return cmd_recovery(args, /*traced=*/true);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
