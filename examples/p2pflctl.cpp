// p2pflctl — command-line front end for the library.
//
//   p2pflctl train    [--peers=N --groups=m|--n=K --dist=iid|noniid5|noniid0]
//                     [--rounds=R --tolerance=F --fraction=P --seed=S]
//                     [--weighted] [--checkpoint=FILE]
//                     [--transport=sim|tcp]
//   p2pflctl cost     [--peers=N --n=K --k=K2 --params=P]
//   p2pflctl health   [--peers=N --groups=m --timeout-ms=T --tolerance=F]
//                     [--amnesia] [--wal[=DIR]] [--seed=S]
//   p2pflctl attack   [--peers=N --groups=m --attack=KIND --defense=RULE]
//                     [--magnitude=M --strike-limit=K --loss=P --seed=S]
//   p2pflctl recovery [--peers=N --groups=m --timeout-ms=T --crash=sub|fed]
//   p2pflctl trace    [--peers=N --groups=m --timeout-ms=T --crash=sub|fed]
//                     [--out=BASE] [--categories=sim,net,raft,agg]
//   p2pflctl chaos    [--peers=N --groups=m --rounds=R --seed=S]
//                     [--loss=P --dup=P --reorder-ms=J]
//                     [--corrupt=P --truncate=P]
//                     [--churn-mttf=MS --churn-mttr=MS]
//                     [--partition-at=MS --heal-at=MS --interval=MS]
//                     [--transport=sim|tcp] [--wal=DIR]
//                     [--kill-after-round=N] [--resume]
//   p2pflctl explain  [same scenario flags as chaos, fault-free default]
//                     [--round=N] [--out=BASE]
//   p2pflctl watch    [same scenario flags as chaos, fault-free default]
//                     [--max-latency-ms=T --out=BASE]
//   p2pflctl wire     [--dim=D --n=N --k=K --seed=S] [--dump=KEY]
//
// Everything runs on the deterministic simulator; identical flags give
// identical results. The one exception is `train --transport=tcp`,
// which runs the full FedAvg system over real loopback TCP sockets
// (net::tcp::TcpTransport) and cross-checks the per-round payload bytes
// it measured on the wire against the paper's Eq. (4) closed form —
// exit status 1 if they disagree. `trace` replays the recovery scenario with the
// observability layer on and writes BASE.metrics.jsonl plus
// BASE.trace.json (Chrome trace_event format; open in about://tracing).
// `chaos` runs two-layer aggregation rounds under a scripted fault plan
// (message loss, duplication, reordering, crash/restart churn and an
// optional partition window) and checks that every committed round is
// the exact average of its contributing peers. `chaos --transport=tcp`
// moves the same self-healing scenario onto real loopback sockets with
// WAL-backed Raft state in --wal=DIR: it injects a connection reset, a
// bandwidth-throttle window and a crash/restart through the chaos
// engine, then verifies the victim rejoined from its on-disk log with
// zero InstallSnapshot RPCs. `--kill-after-round=N` SIGKILLs the whole
// process mid-run (exit 137) so a second invocation with `--resume` can
// prove every peer recovers from the write-ahead logs it left behind.
// `health` exercises the
// self-healing membership path end to end — stabilize, crash a peer,
// watch it get suspected and evicted, restart it (optionally with
// amnesia) and watch it rejoin — printing the live membership table at
// each stage; exit status reflects whether the final state is fully
// healed. With `--wal[=DIR]` the cluster runs on persistent Raft
// storage and the verdict reports whether the restarted peer replayed
// its state from disk, plus the raft.*/chaos.transport.*/net.tcp.*
// durability counters (these also land in the `--json` document). `attack` turns one subgroup follower adversarial mid-run
// (inconsistent SAC shares by default; any robust::AttackKind by flag)
// with Byzantine detection on, then reports the detection → strikes →
// denounce → eviction chain and the membership table with its banned
// column; exit 0 means the adversary was contained (or, for attacks SAC
// masking makes undetectable, tolerated) with zero honest suspects.
// `explain` replays the
// same scenario with causal span recording on and prints the chosen
// round's critical path — which phases, links and retries the
// end-to-end latency is attributable to — plus an abort post-mortem for
// every round that died. `watch` runs the chaos scenario under the SLO
// watchdog: a live per-round table (latency, bytes vs the Eq. (4)/(5)
// closed form, churn, breached rules), the final SLO report and one
// alert post-mortem per breach; `--out=BASE` writes
// BASE.timeseries.jsonl and BASE.slo.json. `wire` prints the codec
// catalog: every registered protocol message kind with its encoded size
// for the given deployment shape, plus a hex dump of one sample
// encoding.
//
// `health` and `attack` accept `--json` to print a single
// machine-readable verdict document instead of the human tables. Exit
// codes are uniform across subcommands: 0 = healthy / contained /
// passed, 1 = degraded / breach / failed, 2 = usage error (unknown
// command, unknown flag value, unwritable output path).
#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>

#include "analysis/cost_model.hpp"
#include "bench/bench_util.hpp"
#include "bench/json_util.hpp"
#include "bench/obs_util.hpp"
#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "chaos/soak.hpp"
#include "core/fl_experiment.hpp"
#include "core/system.hpp"
#include "core/two_layer_raft.hpp"
#include "core/wire.hpp"
#include "fl/checkpoint.hpp"
#include "net/codec.hpp"
#include "net/tcp/tcp_transport.hpp"
#include "raft/wire.hpp"
#include "secagg/wire.hpp"

using namespace p2pfl;

namespace {

// `train --transport=tcp`: the same two-layer FedAvg system, but over
// real loopback sockets. Every peer gets a listener, frames are the
// canonical codec encodings, and the run cross-validates the measured
// per-round payload bytes against Eq. (4) — the experiment that makes
// the simulator's cost numbers trustworthy.
int cmd_train_tcp(const bench::Args& args) {
  const std::size_t peers = static_cast<std::size_t>(args.get_int("peers", 20));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 5));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 10));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  if (groups == 0 || peers % groups != 0) {
    std::fprintf(stderr, "tcp transport needs --peers divisible by --groups\n");
    return 2;
  }
  const std::size_t n = peers / groups;

  const core::Topology topo = core::Topology::even(peers, groups);
  net::tcp::TcpTransport transport({.peers = topo.all_peers(), .seed = seed});
  net::Network net(transport, {});

  fl::SyntheticSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 400;
  spec.test_samples = 120;
  spec.noise_scale = 0.6;
  Rng data_rng(seed);
  const fl::TrainTest data = fl::make_synthetic(spec, data_rng);
  const fl::PeerIndices parts = fl::partition_iid(data.train, peers, data_rng);

  core::SystemConfig cfg;
  // Real-clock profile: training runs synchronously on the transport's
  // loop thread, so election timeouts must sit well above the longest
  // stall, and protocol retry timers far above loopback latency (on a
  // clean local wire a retry would only distort the cost measurement).
  cfg.raft.raft.election_timeout_min = 1 * kSecond;
  cfg.raft.raft.election_timeout_max = 2 * kSecond;
  cfg.raft.fedavg_presence_poll = 200 * kMillisecond;
  cfg.round_interval = 1 * kSecond;
  cfg.train_duration = 50 * kMillisecond;
  cfg.agg.collect_timeout = 60 * kSecond;
  cfg.agg.sac_share_timeout = 20 * kSecond;
  cfg.agg.sac_subtotal_timeout = 20 * kSecond;
  cfg.agg.upload_retry = 60 * kSecond;
  cfg.learning_rate = 3e-3f;
  cfg.seed = seed;
  core::P2pFlSystem sys(topo, cfg, net, data.train, data.test, parts,
                        [] { return fl::Model::mlp(64, {16}); });

  std::mutex mu;
  std::vector<std::uint64_t> payload_at_round;  // sent.payload snapshots
  sys.on_round_complete = [&](std::uint64_t, const secagg::Vector&,
                              std::size_t) {
    std::lock_guard<std::mutex> lock(mu);
    payload_at_round.push_back(net.stats().sent.payload);
  };

  transport.start();
  std::printf("training over TCP: %zu peers in %zu subgroups of %zu, "
              "%zu rounds (loopback ports %u..%u)\n",
              peers, groups, n, rounds, transport.port_of(0),
              transport.port_of(static_cast<PeerId>(peers - 1)));
  transport.call([&] { sys.start(); });
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30 + 3 * rounds);
  for (;;) {
    std::size_t done;
    {
      std::lock_guard<std::mutex> lock(mu);
      done = payload_at_round.size();
    }
    if (done >= rounds + 1) break;
    if (std::chrono::steady_clock::now() > deadline) {
      transport.shutdown();
      std::fprintf(stderr, "timed out after %zu completed rounds\n", done);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  transport.shutdown();

  const std::size_t dim = sys.global_model_at(0).size();
  const std::uint64_t w = 4 * static_cast<std::uint64_t>(dim);
  const double expected = analysis::two_layer_cost_eq4(groups, n);
  bool all_exact = true;
  for (std::size_t r = 1; r < payload_at_round.size() && r <= rounds; ++r) {
    const std::uint64_t delta = payload_at_round[r] - payload_at_round[r - 1];
    const double units = static_cast<double>(delta) / static_cast<double>(w);
    const bool exact = units == expected;
    all_exact = all_exact && exact;
    std::printf("  round %3zu  payload %8llu B  = %7.1f |w|  eq4 %7.1f  %s\n",
                r, static_cast<unsigned long long>(delta), units, expected,
                exact ? "exact" : "MISMATCH");
  }
  const auto ev = sys.evaluate_global();
  std::printf("final: %.2f%% accuracy after %zu rounds; raw wire %llu B "
              "sent / %llu B received over %llu frames\n",
              ev.accuracy * 100.0, sys.rounds_completed(),
              static_cast<unsigned long long>(transport.raw_bytes_sent()),
              static_cast<unsigned long long>(transport.raw_bytes_received()),
              static_cast<unsigned long long>(transport.frames_sent()));
  std::printf("per-round payload %s the Eq. (4) closed form (%.1f |w|)\n",
              all_exact ? "matches" : "DOES NOT match", expected);
  return all_exact ? 0 : 1;
}

int cmd_train(const bench::Args& args) {
  const std::string transport = args.get("transport", "sim");
  if (transport == "tcp") return cmd_train_tcp(args);
  if (transport != "sim") {
    std::fprintf(stderr, "unknown transport '%s' (sim|tcp)\n",
                 transport.c_str());
    return 2;
  }
  core::FlExperimentConfig cfg;
  cfg.peers = static_cast<std::size_t>(args.get_int("peers", 10));
  cfg.subgroups = static_cast<std::size_t>(args.get_int("groups", 0));
  cfg.group_size = static_cast<std::size_t>(args.get_int("n", 3));
  if (cfg.subgroups > 0) cfg.group_size = 0;
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 50));
  cfg.sac_k = static_cast<std::size_t>(args.get_int("k", 0));
  cfg.fraction_p = args.get_double("fraction", 1.0);
  cfg.dropout_after_share_prob = args.get_double("dropout", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.weight_by_samples = args.has("weighted");
  cfg.eval_every = 5;
  cfg.data = fl::mnist_like();
  cfg.data.noise_scale = args.get_double("noise", 2.0);
  cfg.learning_rate = 1e-3f;

  const std::string dist = args.get("dist", "iid");
  cfg.distribution = dist == "noniid5" ? core::DataDistribution::kNonIid5
                     : dist == "noniid0"
                         ? core::DataDistribution::kNonIid0
                         : core::DataDistribution::kIid;

  std::printf("training: %zu peers, %s, %zu rounds, subgroups of ~%zu\n",
              cfg.peers, core::distribution_name(cfg.distribution),
              cfg.rounds, cfg.group_size);
  const auto result =
      core::run_fl_experiment(cfg, [](const core::RoundRecord& rec) {
        if (rec.test_accuracy) {
          std::printf("  round %4zu  loss %.4f  acc %5.2f%%\n", rec.round,
                      rec.train_loss, *rec.test_accuracy * 100.0);
        }
      });
  std::printf("final: %.2f%% (quorum failures: %zu)\n",
              result.final_accuracy * 100.0,
              result.subgroup_quorum_failures);

  const std::string ckpt = args.get("checkpoint", "");
  if (!ckpt.empty()) {
    if (fl::save_checkpoint(ckpt, result.final_weights)) {
      std::printf("saved final global model (%zu params) to %s\n",
                  result.final_weights.size(), ckpt.c_str());
    } else {
      std::fprintf(stderr, "failed to write checkpoint %s\n", ckpt.c_str());
      return 2;
    }
  }
  return 0;
}

int cmd_cost(const bench::Args& args) {
  const std::size_t N = static_cast<std::size_t>(args.get_int("peers", 30));
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 3));
  const std::size_t k =
      static_cast<std::size_t>(args.get_int("k", static_cast<long>(n)));
  const analysis::ModelSize w{
      static_cast<std::uint64_t>(args.get_int("params", 1'250'000))};
  const auto groups = analysis::subgroups_by_target_size(N, n);
  std::printf("N=%zu, %zu subgroups of ~%zu, |w|=%.0f Mb\n", N,
              groups.size(), n, w.megabits());
  std::printf("  one-layer SAC : %8.2f Gb\n",
              w.gigabits_for(analysis::one_layer_sac_cost(N)));
  std::printf("  two-layer %zu-%zu: %8.2f Gb (%.2fx)\n", k, n,
              w.gigabits_for(analysis::two_layer_ft_cost(groups, n, k)),
              analysis::one_layer_sac_cost(N) /
                  analysis::two_layer_ft_cost(groups, n, k));
  std::printf("  plain FedAvg  : %8.2f Gb (no model privacy)\n",
              w.gigabits_for(2.0 * (N - 1)));
  return 0;
}

int cmd_recovery(const bench::Args& args, bool traced = false) {
  const std::size_t peers =
      static_cast<std::size_t>(args.get_int("peers", 25));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 5));
  const SimDuration T = args.get_int("timeout-ms", 150) * kMillisecond;
  const bool crash_fed = args.get("crash", "sub") == "fed";

  sim::Simulator sim(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  if (traced) {
    sim.obs().trace.set_enabled(true);
    // --categories=net,raft limits the stream; default records all.
    std::string cats = args.get("categories", "");
    while (!cats.empty()) {
      const std::size_t comma = cats.find(',');
      sim.obs().trace.enable_category(cats.substr(0, comma));
      cats = comma == std::string::npos ? "" : cats.substr(comma + 1);
    }
  }
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  core::TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = T;
  opts.raft.election_timeout_max = 2 * T;
  core::TwoLayerRaftSystem sys(core::Topology::even(peers, groups), opts,
                               net);
  sys.on_subgroup_leader = [&](SubgroupId g, PeerId p) {
    std::printf("[%7.0fms] subgroup %u elected peer %u\n", to_ms(sim.now()),
                g, p);
  };
  sys.on_fedavg_leader = [&](PeerId p) {
    std::printf("[%7.0fms] FedAvg layer elected peer %u\n", to_ms(sim.now()),
                p);
  };
  sys.on_fedavg_joined = [&](PeerId p) {
    std::printf("[%7.0fms] peer %u (re)joined the FedAvg layer\n",
                to_ms(sim.now()), p);
  };
  sys.start_all();
  while (!sys.stabilized() && sim.now() < 30 * kSecond) {
    sim.run_for(20 * kMillisecond);
  }
  if (!sys.stabilized()) {
    std::printf("failed to stabilize\n");
    return 1;
  }
  const PeerId fed = sys.fedavg_leader();
  PeerId victim = fed;
  if (!crash_fed) {
    for (SubgroupId g = 0; g < groups; ++g) {
      if (sys.subgroup_leader(g) != fed) {
        victim = sys.subgroup_leader(g);
        break;
      }
    }
  }
  std::printf("[%7.0fms] *** crashing %s leader, peer %u ***\n",
              to_ms(sim.now()), crash_fed ? "the FedAvg" : "a subgroup",
              victim);
  const SimTime t0 = sim.now();
  sys.crash_peer(victim);
  while (!sys.stabilized() && sim.now() < t0 + 60 * kSecond) {
    sim.run_for(20 * kMillisecond);
  }
  std::printf("[%7.0fms] system stable again — recovery took %.0f ms\n",
              to_ms(sim.now()), to_ms(sim.now() - t0));
  if (traced) {
    bench::export_observability(sim, args.get("out", "p2pfl"));
  }
  return 0;
}

std::string peer_list(const std::vector<PeerId>& v) {
  if (v.empty()) return "-";
  std::string s;
  for (PeerId p : v) {
    if (!s.empty()) s += ",";
    s += std::to_string(p);
  }
  return s;
}

void print_health(const sim::Simulator& sim,
                  const core::HealthReport& hr) {
  std::printf("[%7.0fms] FedAvg leader %s, %zu fed members [%s]\n",
              to_ms(sim.now()),
              hr.fedavg_leader == kNoPeer
                  ? "-"
                  : std::to_string(hr.fedavg_leader).c_str(),
              hr.fedavg_members.size(),
              peer_list(hr.fedavg_members).c_str());
  std::printf("  %3s %6s  %-12s %-12s %-10s %-8s %-7s %5s  %s\n", "sg",
              "leader", "config", "live", "suspected", "evicted", "banned",
              "k", "state");
  for (const core::SubgroupHealth& h : hr.subgroups) {
    std::printf("  %3u %6s  %-12s %-12s %-10s %-8s %-7s %2zu/%-2zu  %s\n",
                h.subgroup,
                h.leader == kNoPeer ? "-"
                                    : std::to_string(h.leader).c_str(),
                peer_list(h.config).c_str(), peer_list(h.live).c_str(),
                peer_list(h.suspected).c_str(),
                peer_list(h.evicted).c_str(), peer_list(h.banned).c_str(),
                h.effective_k, h.nominal_k,
                h.parked ? "PARKED" : (h.degraded ? "DEGRADED" : "ok"));
  }
}

/// JSON value for a possibly-absent peer id (kNoPeer -> null).
void peer_or_null(bench::JsonWriter& w, PeerId p) {
  if (p == kNoPeer) {
    w.value_raw("null");
  } else {
    w.value_u64(p);
  }
}

/// Append the membership snapshot (`fedavg_leader` + per-subgroup
/// summary) to an open --json verdict document.
void health_report_json(bench::JsonWriter& w, const core::HealthReport& hr) {
  w.key("fedavg_leader");
  peer_or_null(w, hr.fedavg_leader);
  w.field_u64("fedavg_members", hr.fedavg_members.size());
  w.key("subgroups").array_begin();
  for (const core::SubgroupHealth& h : hr.subgroups) {
    w.object_begin().field_u64("subgroup", h.subgroup);
    w.key("leader");
    peer_or_null(w, h.leader);
    w.field_u64("config", h.config.size())
        .field_u64("live", h.live.size())
        .field_u64("suspected", h.suspected.size())
        .field_u64("evicted", h.evicted.size())
        .field_u64("banned", h.banned.size())
        .field_u64("effective_k", h.effective_k)
        .field_u64("nominal_k", h.nominal_k)
        .field_str("state",
                   h.parked ? "parked" : (h.degraded ? "degraded" : "ok"))
        .object_end();
  }
  w.array_end();
}

bool fully_healed(const core::HealthReport& hr) {
  if (hr.fedavg_leader == kNoPeer) return false;
  for (const core::SubgroupHealth& h : hr.subgroups) {
    if (h.leader == kNoPeer || h.parked) return false;
    if (!h.suspected.empty() || !h.evicted.empty()) return false;
    // The FedAvg layer is representative-based: every subgroup's leader
    // must hold a seat there.
    if (std::find(hr.fedavg_members.begin(), hr.fedavg_members.end(),
                  h.leader) == hr.fedavg_members.end()) {
      return false;
    }
  }
  return true;
}

/// Delete every regular file in `dir` (the flat layout raft::WalStorage
/// uses). Missing directory is fine — it's created on first use.
void wipe_wal_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    if (e->d_name[0] == '.') continue;
    ::unlink((dir + "/" + e->d_name).c_str());
  }
  ::closedir(d);
}

/// Append the durability/fault-injection metrics sub-object to an open
/// JSON document: every `raft.*` counter, every `chaos.transport.*`
/// counter, and a summary of the `raft.recovery_ms` histogram. The
/// names are exactly the registry names, so a dashboard can join this
/// against a metrics JSONL dump.
void durability_metrics_json(bench::JsonWriter& w,
                             const obs::MetricsRegistry& metrics) {
  w.key("metrics").object_begin();
  for (const auto& [name, c] : metrics.counters()) {
    if (name.rfind("raft.", 0) == 0 ||
        name.rfind("chaos.transport.", 0) == 0 ||
        name.rfind("net.tcp.", 0) == 0 ||
        name.rfind("membership.", 0) == 0) {
      w.field_u64(name, c.value());
    }
  }
  for (const auto& [name, h] : metrics.histograms()) {
    if (name != "raft.recovery_ms" || h.count() == 0) continue;
    w.key(name)
        .object_begin()
        .field_u64("count", h.count())
        .field_double("mean", h.mean(), "%.3f")
        .field_double("max", h.max(), "%.3f")
        .object_end();
  }
  w.object_end();
}

int cmd_health(const bench::Args& args) {
  const std::size_t peers =
      static_cast<std::size_t>(args.get_int("peers", 12));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 3));
  const SimDuration T = args.get_int("timeout-ms", 100) * kMillisecond;
  const std::size_t tolerance =
      static_cast<std::size_t>(args.get_int("tolerance", 1));
  const bool amnesia = args.has("amnesia");
  const bool json = args.has("json");
  const bool wal = args.has("wal");

  sim::Simulator sim(static_cast<std::uint64_t>(args.get_int("seed", 1)));
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  core::TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = T;
  opts.raft.election_timeout_max = 2 * T;
  if (wal) {
    // Crash-durable mode: every peer persists through a write-ahead
    // log, so the restart below is a true process restart — the state
    // comes back from disk, not from the surviving replicas.
    std::string dir = args.get("wal", "");
    if (dir.empty()) dir = "p2pflctl_health_wal";
    wipe_wal_dir(dir);
    opts.storage_dir = dir;
  }
  core::TwoLayerRaftSystem sys(core::Topology::even(peers, groups), opts,
                               net);

  PeerId victim = kNoPeer;
  double evict_ms = -1.0;
  double heal_ms = -1.0;
  // One machine-readable verdict document under --json (tables off).
  // `stage` names how far the scenario got: stabilize -> evict -> heal.
  auto verdict = [&](const char* stage, bool ok) {
    if (!json) return ok ? 0 : 1;
    bench::JsonWriter w = bench::bench_document("p2pflctl_health");
    w.field_u64("peers", peers)
        .field_u64("groups", groups)
        .field_bool("amnesia", amnesia)
        .field_bool("wal", wal)
        .key("victim");
    peer_or_null(w, victim);
    w.key("recovered_from_wal");
    if (victim == kNoPeer) {
      w.value_raw("null");
    } else {
      w.value_bool(sys.subgroup_node(victim).recovered_from_storage());
    }
    w.field_str("stage", stage)
        .field_bool("healed", ok)
        .field_double("evict_ms", evict_ms, "%.0f")
        .field_double("heal_ms", heal_ms, "%.0f");
    health_report_json(w, sys.health(tolerance));
    durability_metrics_json(w, sim.obs().metrics);
    w.object_end();
    std::printf("%s\n", w.str().c_str());
    return ok ? 0 : 1;
  };

  sys.start_all();
  while (!sys.stabilized() && sim.now() < 30 * kSecond) {
    sim.run_for(20 * kMillisecond);
  }
  if (!sys.stabilized()) {
    if (!json) std::printf("failed to stabilize\n");
    return verdict("stabilize", false);
  }
  if (!json) {
    std::printf("--- stabilized ---\n");
    print_health(sim, sys.health(tolerance));
  }

  // Crash a pure subgroup follower so both layers must notice and evict.
  for (PeerId p : sys.topology().all_peers()) {
    bool leads = p == sys.fedavg_leader();
    for (SubgroupId g = 0; g < groups; ++g) {
      if (sys.subgroup_leader(g) == p) leads = true;
    }
    if (!leads) {
      victim = p;
      break;
    }
  }
  if (!json) std::printf("\n--- crashing peer %u ---\n", victim);
  sys.crash_peer(victim);
  const SimTime t0 = sim.now();
  auto evicted = [&] {
    const core::HealthReport hr = sys.health(tolerance);
    const SubgroupId g = sys.topology().subgroup_of(victim);
    const auto& ev = hr.subgroups[g].evicted;
    return std::find(ev.begin(), ev.end(), victim) != ev.end();
  };
  while (!evicted() && sim.now() < t0 + 60 * kSecond) {
    sim.run_for(50 * kMillisecond);
  }
  evict_ms = to_ms(sim.now() - t0);
  if (!json) print_health(sim, sys.health(tolerance));
  if (!evicted()) {
    if (!json) std::printf("peer %u was never evicted\n", victim);
    return verdict("evict", false);
  }

  if (!json) {
    std::printf("\n--- restarting peer %u%s ---\n", victim,
                amnesia ? " (amnesia)" : "");
  }
  if (amnesia) {
    sys.restart_peer_amnesia(victim);
  } else {
    sys.restart_peer(victim);
  }
  const SimTime t1 = sim.now();
  while ((!sys.stabilized() || !fully_healed(sys.health(tolerance))) &&
         sim.now() < t1 + 120 * kSecond) {
    sim.run_for(50 * kMillisecond);
  }
  heal_ms = to_ms(sim.now() - t1);
  const bool healed =
      sys.stabilized() && fully_healed(sys.health(tolerance));
  if (!json) {
    print_health(sim, sys.health(tolerance));
    std::printf("\nself-healing: %s (evict %.0f ms after crash, heal %.0f "
                "ms after restart)\n",
                healed ? "OK" : "FAILED", evict_ms, heal_ms);
    if (wal && victim != kNoPeer) {
      std::printf("wal: peer %u %s from disk (raft.recoveries=%llu)\n",
                  victim,
                  sys.subgroup_node(victim).recovered_from_storage()
                      ? "recovered"
                      : "did NOT recover",
                  static_cast<unsigned long long>(
                      sim.obs().metrics.counter_value("raft.recoveries")));
    }
  }
  return verdict("heal", healed);
}

int cmd_attack(const bench::Args& args) {
  const std::size_t peers =
      static_cast<std::size_t>(args.get_int("peers", 12));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));
  const SimDuration horizon = args.get_int("seconds", 90) * kSecond;
  const bool json = args.has("json");

  robust::AttackKind kind;
  const std::string attack = args.get("attack", "inconsistent_shares");
  if (!robust::attack_from_name(attack, kind) ||
      kind == robust::AttackKind::kNone) {
    std::fprintf(stderr, "unknown attack '%s'\n", attack.c_str());
    return 2;
  }
  robust::RobustRule rule;
  const std::string defense = args.get("defense", "trimmed_mean");
  if (!robust::rule_from_name(defense, rule)) {
    std::fprintf(stderr, "unknown defense '%s'\n", defense.c_str());
    return 2;
  }
  // Equivocation only manifests on retries, so give it a lossy network
  // by default (retries carry the divergent payloads).
  const bool detectable =
      kind == robust::AttackKind::kInconsistentShares ||
      kind == robust::AttackKind::kEquivocate;
  const double loss = args.get_double(
      "loss", kind == robust::AttackKind::kEquivocate ? 0.15 : 0.0);

  sim::Simulator sim(seed);
  net::NetworkConfig nopts;
  nopts.base_latency = 15 * kMillisecond;
  nopts.faults.drop_prob = loss;
  net::Network net(sim, nopts);

  fl::SyntheticSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 400;
  spec.test_samples = 120;
  spec.noise_scale = 0.6;
  Rng data_rng(seed);
  const fl::TrainTest data = fl::make_synthetic(spec, data_rng);
  const fl::PeerIndices parts =
      fl::partition_iid(data.train, peers, data_rng);

  robust::ByzantineRegistry registry;
  core::SystemConfig cfg;
  cfg.raft.raft.election_timeout_min = 50 * kMillisecond;
  cfg.raft.raft.election_timeout_max = 100 * kMillisecond;
  cfg.raft.fedavg_presence_poll = 100 * kMillisecond;
  cfg.round_interval = 1 * kSecond;
  cfg.train_duration = 100 * kMillisecond;
  cfg.learning_rate = 3e-3f;
  cfg.seed = seed;
  cfg.suspect_strike_limit =
      static_cast<std::size_t>(args.get_int("strike-limit", 2));
  cfg.agg.detect_byzantine = true;
  cfg.agg.byzantine = &registry;
  cfg.agg.robust.rule = rule;
  cfg.agg.robust.trim_fraction = args.get_double("trim", 0.2);
  core::P2pFlSystem sys(core::Topology::even(peers, groups), cfg, net,
                        data.train, data.test, parts,
                        [] { return fl::Model::mlp(64, {16}); });

  // Detection-chain counters reported by both output modes. Read with
  // counter_value() so an unfired counter reports 0 without the lookup
  // itself registering it into the metric dump.
  static constexpr const char* kDetectionCounters[] = {
      "byzantine.models_poisoned", "byzantine.inconsistent_bundles_sent",
      "byzantine.equivocations_sent", "byzantine.share_check_failed",
      "byzantine.upload_equivocations", "byzantine.suspected",
      "byzantine.strikes", "membership.denounced", "membership.evicted"};

  PeerId victim = kNoPeer;
  // One machine-readable verdict document under --json (tables off).
  auto emit_json = [&](const char* verdict, bool ok, bool honest_struck) {
    bench::JsonWriter w = bench::bench_document("p2pflctl_attack");
    w.field_str("attack", robust::attack_name(kind))
        .field_str("defense", robust::rule_name(rule))
        .field_bool("detectable", detectable)
        .field_double("loss", loss, "%.4g")
        .field_u64("strike_limit", cfg.suspect_strike_limit)
        .key("victim");
    peer_or_null(w, victim);
    w.field_u64("rounds_completed", sys.rounds_completed())
        .field_bool("banned",
                    victim != kNoPeer && sys.raft().is_banned(victim))
        .field_bool("honest_strikes", honest_struck)
        .field_str("verdict", verdict)
        .field_bool("ok", ok);
    w.key("counters").object_begin();
    for (const char* key : kDetectionCounters) {
      w.field_u64(key, sim.obs().metrics.counter_value(key));
    }
    w.object_end().object_end();
    std::printf("%s\n", w.str().c_str());
    return ok ? 0 : 1;
  };

  sys.start();
  while (sys.rounds_completed() < 2 && sim.now() < 30 * kSecond) {
    sim.run_for(100 * kMillisecond);
  }
  if (sys.rounds_completed() < 2) {
    if (!json) std::printf("rounds never started\n");
    return json ? emit_json("no_rounds", false, false) : 1;
  }

  // Turn a pure subgroup follower adversarial: its SAC leader must
  // catch it from the share evidence alone.
  for (PeerId p : sys.raft().topology().all_peers()) {
    bool leads = p == sys.raft().fedavg_leader();
    for (SubgroupId g = 0; g < groups; ++g) {
      if (sys.raft().subgroup_leader(g) == p) leads = true;
    }
    if (!leads) {
      victim = p;
      break;
    }
  }
  registry.activate(victim,
                    {kind, args.get_double("magnitude", 10.0)});
  if (!json) {
    std::printf("[%7.0fms] *** peer %u turns Byzantine: %s (defense %s, "
                "loss %.2f, strike limit %zu) ***\n",
                to_ms(sim.now()), victim, robust::attack_name(kind),
                robust::rule_name(rule), loss, cfg.suspect_strike_limit);
  }

  const SimTime t0 = sim.now();
  auto evicted = [&] {
    const core::HealthReport hr = sys.raft().health(1);
    const SubgroupId g = sys.raft().topology().subgroup_of(victim);
    const auto& ev = hr.subgroups[g].evicted;
    return std::find(ev.begin(), ev.end(), victim) != ev.end();
  };
  auto finished = [&] {
    return detectable ? sys.raft().is_banned(victim) && evicted()
                      : sim.now() >= t0 + 20 * kSecond;
  };
  while (!finished() && sim.now() < t0 + horizon) {
    sim.run_for(100 * kMillisecond);
  }
  if (!json) {
    print_health(sim, sys.raft().health(1));
    std::printf("\ndetection:\n");
    for (const char* key : kDetectionCounters) {
      std::printf("  %-36s %6llu\n", key,
                  static_cast<unsigned long long>(
                      sim.obs().metrics.counter_value(key)));
    }
    std::printf("strikes:");
    for (const auto& [p, s] : sys.strikes()) {
      std::printf(" peer %u x%zu", p, s);
    }
    std::printf("%s\n", sys.strikes().empty() ? " none" : "");
  }

  // Honest peers must never be suspected, whatever the attack.
  bool honest_struck = false;
  for (const auto& [p, s] : sys.strikes()) {
    if (p != victim) honest_struck = true;
  }
  const std::size_t completed = sys.rounds_completed();
  bool ok;
  const char* verdict;
  if (detectable) {
    ok = !honest_struck && sys.raft().is_banned(victim) && evicted();
    verdict = ok ? "contained" : "not_contained";
    if (!json) {
      std::printf("\nattack: %s (adversary %u %s, %s honest strikes)\n",
                  ok ? "CONTAINED" : "NOT CONTAINED", victim,
                  sys.raft().is_banned(victim) ? "denounced + evicted"
                                               : "still a member",
                  honest_struck ? "WITH" : "no");
    }
  } else {
    // Poisoning is invisible under SAC masking by design; the win here
    // is that rounds keep completing, nobody honest is framed, and the
    // chosen robust rule is what stands between the lie and the model.
    ok = !honest_struck && completed >= 10;
    verdict = ok ? "tolerated" : "not_tolerated";
    if (!json) {
      std::printf("\nattack: %s (undetectable kind — %zu rounds completed, "
                  "%s honest strikes; defense %s is the only mitigation)\n",
                  ok ? "TOLERATED" : "NOT TOLERATED", completed,
                  honest_struck ? "WITH" : "no", robust::rule_name(rule));
    }
  }
  return json ? emit_json(verdict, ok, honest_struck) : (ok ? 0 : 1);
}

/// Shared soak-scenario flags of `chaos` and `explain` (they differ only
/// in default ambient fault rates).
chaos::ChaosSoakConfig soak_config(const bench::Args& args,
                                   double default_loss, double default_dup) {
  chaos::ChaosSoakConfig cfg;
  cfg.peers = static_cast<std::size_t>(args.get_int("peers", 12));
  cfg.groups = static_cast<std::size_t>(args.get_int("groups", 3));
  cfg.rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
  cfg.dim = static_cast<std::size_t>(args.get_int("dim", 8));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.round_interval = args.get_int("interval", 1000) * kMillisecond;
  cfg.net.faults.drop_prob = args.get_double("loss", default_loss);
  cfg.net.faults.duplicate_prob = args.get_double("dup", default_dup);
  cfg.net.faults.corrupt_prob = args.get_double("corrupt", 0.0);
  cfg.net.faults.truncate_prob = args.get_double("truncate", 0.0);
  const long reorder_ms = args.get_int("reorder-ms", 0);
  if (reorder_ms > 0) {
    cfg.net.faults.reorder_prob = 0.25;
    cfg.net.faults.reorder_jitter = reorder_ms * kMillisecond;
  }
  cfg.churn_mttf = args.get_int("churn-mttf", 0) * kMillisecond;
  cfg.churn_mttr = args.get_int("churn-mttr", 1000) * kMillisecond;
  cfg.partition_at = args.get_int("partition-at", 0) * kMillisecond;
  cfg.heal_at = args.get_int("heal-at", 0) * kMillisecond;
  return cfg;
}

// `chaos --transport=tcp`: the self-healing chaos scenario over real
// loopback sockets with crash-durable Raft state. Stabilize, then run a
// scripted transport-fault plan (a connection reset, a slow-writer
// throttle window) plus a crash that outlives the suspicion grace; the
// victim is evicted, restarts from its write-ahead log and rejoins.
//
// `--kill-after-round=N` SIGKILLs the whole process the moment round N
// completes (exit 137, nothing flushed gracefully) — re-running with
// `--resume` over the same `--wal` directory must then recover every
// peer from disk and heal. That pair of invocations is the crash-
// recovery soak CI runs nightly.
int cmd_chaos_tcp(const bench::Args& args) {
  const std::size_t peers =
      static_cast<std::size_t>(args.get_int("peers", 12));
  const std::size_t groups =
      static_cast<std::size_t>(args.get_int("groups", 3));
  const std::size_t rounds =
      static_cast<std::size_t>(args.get_int("rounds", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 7));
  const long kill_after = args.get_int("kill-after-round", 0);
  const bool resume = args.has("resume");
  std::string wal_dir = args.get("wal", "");
  if (wal_dir.empty()) wal_dir = "p2pflctl_chaos_wal";
  if (groups == 0 || peers % groups != 0) {
    std::fprintf(stderr, "tcp transport needs --peers divisible by --groups\n");
    return 2;
  }
  if (!resume) wipe_wal_dir(wal_dir);

  const core::Topology topo = core::Topology::even(peers, groups);
  net::tcp::TcpTransport transport({.peers = topo.all_peers(), .seed = seed});
  net::Network net(transport, {});

  fl::SyntheticSpec spec;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 400;
  spec.test_samples = 120;
  spec.noise_scale = 0.6;
  Rng data_rng(seed);
  const fl::TrainTest data = fl::make_synthetic(spec, data_rng);
  const fl::PeerIndices parts = fl::partition_iid(data.train, peers, data_rng);

  core::SystemConfig cfg;
  // Real-clock profile (see cmd_train_tcp), plus self-healing timing
  // sized so an 8-second crash reliably outlives the suspicion grace.
  cfg.raft.raft.election_timeout_min = 1 * kSecond;
  cfg.raft.raft.election_timeout_max = 2 * kSecond;
  cfg.raft.fedavg_presence_poll = 200 * kMillisecond;
  cfg.raft.config_commit_interval = 500 * kMillisecond;
  cfg.raft.suspicion_grace = 4 * kSecond;
  cfg.raft.membership_poll = 500 * kMillisecond;
  cfg.raft.rejoin_retry = 500 * kMillisecond;
  cfg.raft.storage_dir = wal_dir;
  cfg.agg.collect_timeout = 60 * kSecond;
  cfg.agg.sac_share_timeout = 20 * kSecond;
  cfg.agg.sac_subtotal_timeout = 20 * kSecond;
  cfg.agg.upload_retry = 60 * kSecond;
  cfg.agg.sac_dropout_tolerance = 1;
  // Rounds tick every second, so the restarted victim refreshes its
  // model from the next live round result; a catch-up pull would be
  // answered with a deliberate snapshot push and muddy the
  // zero-state-transfer verdict below.
  cfg.catchup_retry = 60 * kSecond;
  cfg.round_interval = 1 * kSecond;
  cfg.train_duration = 50 * kMillisecond;
  cfg.learning_rate = 3e-3f;
  cfg.seed = seed;
  core::P2pFlSystem sys(topo, cfg, net, data.train, data.test, parts,
                        [] { return fl::Model::mlp(64, {16}); });

  std::mutex mu;
  std::size_t rounds_done = 0;
  std::set<PeerId> rejoined;
  sys.raft().on_peer_rejoined = [&](PeerId p) {
    std::lock_guard<std::mutex> lock(mu);
    rejoined.insert(p);
  };
  sys.on_round_complete = [&](std::uint64_t, const secagg::Vector&,
                              std::size_t) {
    std::size_t done;
    {
      std::lock_guard<std::mutex> lock(mu);
      done = ++rounds_done;
    }
    if (kill_after > 0 && done == static_cast<std::size_t>(kill_after)) {
      // The nightly crash soak: die NOW, mid-everything, with no
      // graceful teardown. Whatever the WALs hold is the truth the
      // --resume run must come back from.
      std::printf("%zu rounds complete; SIGKILL (resume from %s)\n", done,
                  wal_dir.c_str());
      std::fflush(stdout);
      ::raise(SIGKILL);
    }
  };

  transport.start();
  transport.call([&] { sys.start(); });

  std::size_t recovered = 0;
  transport.call([&] {
    for (PeerId p : topo.all_peers()) {
      recovered += sys.raft().subgroup_node(p).recovered_from_storage();
    }
  });
  std::printf("chaos over TCP: %zu peers in %zu subgroups, wal %s, "
              "%zu/%zu peers recovered from disk\n",
              peers, groups, wal_dir.c_str(), recovered, peers);
  if (resume && recovered == 0) {
    std::fprintf(stderr, "--resume: no write-ahead state in %s\n",
                 wal_dir.c_str());
    transport.shutdown();
    return 1;
  }

  const auto t0 = std::chrono::steady_clock::now();
  auto wait_until = [&](const std::function<bool()>& cond_on_loop,
                        std::chrono::seconds budget) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    for (;;) {
      bool ok = false;
      transport.call([&] { ok = cond_on_loop(); });
      if (ok) return true;
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  };

  if (!wait_until([&] { return sys.raft().stabilized(); },
                  std::chrono::seconds(60))) {
    std::fprintf(stderr, "failed to stabilize\n");
    transport.shutdown();
    return 1;
  }

  // Pick a pure follower as the crash victim, then script the plan
  // relative to the live clock: reset, throttle, crash past the
  // suspicion grace, restart from the WAL.
  PeerId victim = kNoPeer;
  chaos::ChaosEngineHooks hooks;
  hooks.crash = [&sys](PeerId p) { sys.crash_peer(p); };
  hooks.restart = [&sys](PeerId p) { sys.restart_peer(p); };
  std::optional<chaos::ChaosEngine> engine;
  transport.call([&] {
    for (PeerId p : topo.all_peers()) {
      bool leads = p == sys.raft().fedavg_leader();
      for (SubgroupId g = 0; g < groups; ++g) {
        leads = leads || sys.raft().subgroup_leader(g) == p;
      }
      if (!leads) victim = p;  // keep the last: furthest from leaders
    }
    const SimTime now = transport.now();
    chaos::ChaosPlan plan;
    plan.conn_reset_at(now + 1 * kSecond, topo.group(0)[0],
                       topo.group(0)[1]);
    plan.throttle_window(now + 1 * kSecond, now + 3 * kSecond,
                         topo.group(1)[1], /*bytes_per_sec=*/4'000'000);
    plan.crash_at(now + 2 * kSecond, victim);
    plan.restart_at(now + 10 * kSecond, victim);
    engine.emplace(net, std::move(plan), hooks);
    engine->start();
  });
  std::printf("plan: reset %u<->%u, throttle %u, crash+restart %u\n",
              topo.group(0)[0], topo.group(0)[1],
              topo.group(1)[1], victim);

  const bool healed = wait_until(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return rejoined.count(victim) > 0 && sys.raft().stabilized() &&
               fully_healed(sys.raft().health(cfg.agg.sac_dropout_tolerance)) &&
               rounds_done >= rounds;
      },
      std::chrono::seconds(120 + 3 * rounds));

  std::size_t final_rounds;
  bool victim_recovered = false;
  std::uint64_t victim_snapshot_installs = 0;
  transport.call([&] {
    std::lock_guard<std::mutex> lock(mu);
    final_rounds = rounds_done;
    victim_recovered =
        sys.raft().subgroup_node(victim).recovered_from_storage();
    victim_snapshot_installs =
        sys.raft().subgroup_node(victim).metrics().snapshot_installs;
  });
  const obs::MetricsRegistry& m = transport.obs().metrics;
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "after %.1f s: %zu rounds, victim %u %s from wal "
      "(snapshot installs %llu), conn resets %llu, throttle windows %llu, "
      "outq drops %llu, evictions %llu, rejoins %llu\n",
      elapsed_s, final_rounds, victim,
      victim_recovered ? "recovered" : "rebuilt without wal",
      static_cast<unsigned long long>(victim_snapshot_installs),
      static_cast<unsigned long long>(
          m.counter_value("chaos.transport.conn_resets")),
      static_cast<unsigned long long>(
          m.counter_value("chaos.transport.throttle_windows")),
      static_cast<unsigned long long>(m.counter_value("net.tcp.outq_dropped")),
      static_cast<unsigned long long>(m.counter_value("membership.evicted")),
      static_cast<unsigned long long>(m.counter_value("membership.rejoined")));
  transport.shutdown();

  // Healed means: victim evicted and back in, every subgroup led, no
  // standing suspicions — and the WAL restart really was a disk
  // recovery with zero snapshot state transfer.
  const bool ok = healed && victim_recovered && victim_snapshot_installs == 0;
  std::printf("self-healing over TCP: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

int cmd_chaos(const bench::Args& args) {
  if (args.get("transport", "sim") == "tcp") return cmd_chaos_tcp(args);
  chaos::ChaosSoakConfig cfg = soak_config(args, 0.05, 0.05);
  const long reorder_ms = args.get_int("reorder-ms", 0);

  std::printf(
      "chaos soak: %zu peers in %zu groups, %zu rounds @ %.0f ms, seed "
      "%llu\n",
      cfg.peers, cfg.groups, cfg.rounds, to_ms(cfg.round_interval),
      static_cast<unsigned long long>(cfg.seed));
  std::printf(
      "faults: loss %.2f, dup %.2f, corrupt %.2f, truncate %.2f, reorder "
      "jitter %ld ms, churn mttf/mttr %.0f/%.0f ms, partition [%.0f, %.0f) "
      "ms\n",
      cfg.net.faults.drop_prob, cfg.net.faults.duplicate_prob,
      cfg.net.faults.corrupt_prob, cfg.net.faults.truncate_prob, reorder_ms,
      to_ms(cfg.churn_mttf), to_ms(cfg.churn_mttr), to_ms(cfg.partition_at),
      to_ms(cfg.heal_at));

  const chaos::ChaosSoakResult res = chaos::run_chaos_soak(cfg);

  std::printf("\n%5s %9s %12s %10s\n", "round", "outcome", "contributors",
              "max|err|");
  for (const chaos::RoundOutcome& o : res.outcomes) {
    if (o.committed) {
      std::printf("%5llu %9s %8zu/%-3zu %10.2e\n",
                  static_cast<unsigned long long>(o.round), "committed",
                  o.contributors, cfg.peers, o.max_abs_error);
    } else {
      std::printf("%5llu %9s %12s %10s\n",
                  static_cast<unsigned long long>(o.round), "aborted", "-",
                  "-");
    }
  }
  std::printf(
      "\nrounds: %zu started, %zu committed, %zu aborted, %zu skipped "
      "(no live leader)\n",
      res.rounds_started, res.rounds_committed, res.rounds_aborted,
      res.rounds_skipped);
  std::printf("chaos: %zu crashes, %zu restarts\n", res.crashes,
              res.restarts);
  bench::print_traffic(res.traffic);

  // Bit flips have no checksum to catch them in a float payload, so
  // exactness is only promised when corrupt_prob is zero (truncation is
  // fine: every truncated frame is rejected and retried).
  const bool exact_ok =
      res.all_commits_exact || cfg.net.faults.corrupt_prob > 0.0;
  const bool ok = res.liveness_ok && exact_ok;
  std::printf("liveness: %s, exactness: %s (max error %.2e)\n",
              res.liveness_ok ? "OK" : "FAILED",
              res.all_commits_exact
                  ? "OK"
                  : (exact_ok ? "degraded (bit flips)" : "FAILED"),
              res.max_abs_error);
  return ok ? 0 : 1;
}

int cmd_explain(const bench::Args& args) {
  // Fault-free by default; any `chaos` fault flag turns the same scenario
  // into a chaotic one (the spans and post-mortems tell the story).
  chaos::ChaosSoakConfig cfg = soak_config(args, 0.0, 0.0);
  cfg.capture_spans = true;

  std::printf(
      "explain: %zu peers in %zu groups, %zu rounds @ %.0f ms, seed %llu "
      "(loss %.2f, dup %.2f, churn mttf %.0f ms)\n",
      cfg.peers, cfg.groups, cfg.rounds, to_ms(cfg.round_interval),
      static_cast<unsigned long long>(cfg.seed), cfg.net.faults.drop_prob,
      cfg.net.faults.duplicate_prob, to_ms(cfg.churn_mttf));

  const chaos::ChaosSoakResult res = chaos::run_chaos_soak(cfg);

  std::uint64_t last_committed = 0;
  for (const chaos::RoundOutcome& o : res.outcomes) {
    std::printf("  round %llu: %s\n",
                static_cast<unsigned long long>(o.round),
                o.committed ? "committed" : "aborted");
    if (o.committed) last_committed = o.round;
  }

  const std::uint64_t target = static_cast<std::uint64_t>(
      args.get_int("round", static_cast<long>(last_committed)));
  const obs::CriticalPath* cp = nullptr;
  for (const obs::CriticalPath& c : res.critical_paths) {
    if (c.round == target) cp = &c;
  }
  std::printf("\n");
  if (cp != nullptr) {
    std::fputs(obs::critical_path_table(*cp).c_str(), stdout);
  } else {
    std::printf("round %llu has no critical path (never committed or not "
                "retained)\n",
                static_cast<unsigned long long>(target));
  }
  for (const obs::Postmortem& pm : res.postmortems) {
    std::printf("\n");
    std::fputs(pm.table.c_str(), stdout);
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    const std::string path = out + ".spans.jsonl";
    if (obs::write_text_file(path, res.spans_jsonl)) {
      std::printf("\nwrote %s (%zu spans)\n", path.c_str(),
                  static_cast<std::size_t>(
                      std::count(res.spans_jsonl.begin(),
                                 res.spans_jsonl.end(), '\n')));
    } else {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 2;
    }
  }

  // Non-empty attribution is the contract CI's explain-smoke asserts.
  return cp != nullptr && !cp->segments.empty() ? 0 : 1;
}

int cmd_watch(const bench::Args& args) {
  // Same scenario surface as `chaos`, fault-free by default, watched by
  // the SLO engine: a live per-round table while the soak runs, then the
  // per-rule report and one alert post-mortem per breach.
  chaos::ChaosSoakConfig cfg = soak_config(args, 0.0, 0.0);
  cfg.capture_spans = true;
  cfg.capture_timeseries = true;
  // Latency ceiling: committed rounds finish well under the round slot;
  // a censored (aborted/skipped) round consumes the whole slot and so
  // always trips a ceiling below it.
  const double max_latency_ms =
      args.get_double("max-latency-ms", 0.75 * to_ms(cfg.round_interval));
  cfg.slo_rules = obs::default_rules(max_latency_ms);

  std::printf(
      "watch: %zu peers in %zu groups, %zu rounds @ %.0f ms, seed %llu "
      "(loss %.2f, dup %.2f, churn mttf %.0f ms, SLO latency <= %.0f ms)\n",
      cfg.peers, cfg.groups, cfg.rounds, to_ms(cfg.round_interval),
      static_cast<unsigned long long>(cfg.seed), cfg.net.faults.drop_prob,
      cfg.net.faults.duplicate_prob, to_ms(cfg.churn_mttf), max_latency_ms);
  std::printf("\n%5s %9s %8s %7s %12s %8s %6s %7s  %s\n", "round",
              "outcome", "lat ms", "contrib", "payload B", "retries",
              "crash", "strikes", "slo");
  cfg.on_sample = [&](const obs::RoundSample& s,
                      const std::vector<obs::SloBreach>& breaches) {
    std::string slo;
    for (const obs::SloBreach& b : breaches) {
      if (!slo.empty()) slo += ",";
      slo += b.rule;
    }
    std::printf("%5llu %9s %8.0f %7zu %12llu %8llu %6llu %7llu  %s\n",
                static_cast<unsigned long long>(s.round),
                s.committed ? "committed" : "aborted", s.latency_ms,
                s.contributors,
                static_cast<unsigned long long>(s.payload_bytes),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.crashes),
                static_cast<unsigned long long>(s.strikes),
                slo.empty() ? "ok" : slo.c_str());
  };

  const chaos::ChaosSoakResult res = chaos::run_chaos_soak(cfg);

  std::printf("\n%s", res.slo_report.table().c_str());
  for (const obs::SloAlert& a : res.slo_alerts) {
    std::printf("\n%s", obs::slo_alert_text(a).c_str());
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    if (!obs::write_text_file(out + ".timeseries.jsonl",
                              res.timeseries_jsonl) ||
        !obs::write_text_file(out + ".slo.json",
                              res.slo_report.json() + "\n")) {
      std::fprintf(stderr, "watch: cannot write %s.*\n", out.c_str());
      return 2;
    }
    std::printf("\nwrote %s.timeseries.jsonl + %s.slo.json\n", out.c_str(),
                out.c_str());
  }

  const bool healthy = res.slo_report.healthy();
  std::printf("\nSLO: %s (%zu breach(es) over %llu samples)\n",
              healthy ? "HEALTHY" : "BREACHED", res.slo_report.breaches.size(),
              static_cast<unsigned long long>(res.slo_report.samples));
  return healthy ? 0 : 1;
}

int cmd_wire(const bench::Args& args) {
  raft::wire::register_codecs();
  secagg::wire::register_codecs("sac");
  secagg::wire::register_codecs("ml");
  core::wire::register_codecs();

  net::WireSample shape;
  shape.dim = static_cast<std::size_t>(args.get_int("dim", 8));
  shape.n = static_cast<std::size_t>(args.get_int("n", 4));
  shape.k = static_cast<std::size_t>(
      args.get_int("k", static_cast<long>(shape.n - 1)));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  std::printf("codec catalog for dim=%zu, n=%zu, k=%zu:\n", shape.dim,
              shape.n, shape.k);
  std::printf("  %-14s %14s\n", "key", "sample bytes");
  for (const net::Codec* c : net::CodecRegistry::global().all()) {
    const std::optional<Bytes> encoded = c->encode(c->sample(rng, shape));
    if (!encoded.has_value()) {
      std::fprintf(stderr, "codec %s failed to encode its own sample\n",
                   c->key.c_str());
      return 1;
    }
    std::printf("  %-14s %14zu\n", c->key.c_str(), encoded->size());
  }

  const std::string dump = args.get("dump", "join");
  const net::Codec* c = net::CodecRegistry::global().find_key(dump);
  if (c == nullptr) {
    std::fprintf(stderr, "no codec registered under key '%s'\n",
                 dump.c_str());
    return 2;
  }
  const std::optional<Bytes> encoded = c->encode(c->sample(rng, shape));
  if (!encoded.has_value()) return 1;
  constexpr std::size_t kDumpLimit = 64;
  std::printf("\nsample encoding of %s (%zu bytes%s):\n", c->key.c_str(),
              encoded->size(),
              encoded->size() > kDumpLimit ? ", first 64 shown" : "");
  const std::size_t shown = std::min(encoded->size(), kDumpLimit);
  for (std::size_t i = 0; i < shown; i += 16) {
    std::printf("  %04zx ", i);
    for (std::size_t j = i; j < std::min(i + 16, shown); ++j) {
      std::printf(" %02x", (*encoded)[j]);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: p2pflctl "
                 "<train|cost|health|attack|recovery|trace|chaos|explain|"
                 "watch|wire> [--key=value...]\n");
    return 2;
  }
  const bench::Args args(argc - 1, argv + 1);
  const std::string cmd = argv[1];
  if (cmd == "train") return cmd_train(args);
  if (cmd == "cost") return cmd_cost(args);
  if (cmd == "health") return cmd_health(args);
  if (cmd == "attack") return cmd_attack(args);
  if (cmd == "recovery") return cmd_recovery(args);
  if (cmd == "trace") return cmd_recovery(args, /*traced=*/true);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "explain") return cmd_explain(args);
  if (cmd == "watch") return cmd_watch(args);
  if (cmd == "wire") return cmd_wire(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
