// §VII-C demo: run the X-layer all-SAC hierarchy as a live protocol and
// watch the cost follow Eq. (10) = (N-1)(n+2)|w| while the result stays
// the exact global mean.
//
// Usage: multilayer_hierarchy [n] [layers]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "analysis/cost_model.hpp"
#include "core/multilayer.hpp"

using namespace p2pfl;
using namespace p2pfl::core;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::size_t layers =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;

  const auto topo = MultilayerTopology::build(n, layers);
  std::printf("hierarchy: n=%zu, X=%zu -> N=%zu peers in %zu groups "
              "(Eq. 6 gives %llu)\n",
              n, layers, topo.peer_count, topo.groups.size(),
              static_cast<unsigned long long>(
                  analysis::multilayer_peers(n, layers)));
  for (std::size_t l = 1; l <= layers; ++l) {
    std::size_t groups = 0;
    for (const auto& g : topo.groups) {
      if (g.layer == l) ++groups;
    }
    std::printf("  layer %zu: %zu group(s)\n", l, groups);
  }

  sim::Simulator sim(5);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  for (PeerId p = 0; p < topo.peer_count; ++p) {
    hosts.push_back(std::make_unique<net::PeerHost>());
    net.attach(p, hosts.back().get());
  }
  MultilayerOptions opts;
  opts.model_wire_bytes = 5'000'000;  // the Fig. 5 CNN
  MultilayerAggregator agg(topo, opts, net, [&](PeerId p) -> net::PeerHost& {
    return *hosts[p];
  });

  std::size_t received = 0;
  agg.on_complete = [&](secagg::RoundId, const secagg::Vector& avg) {
    std::printf("\n[%6.0fms] top leader holds the global average: %.4f "
                "(expected: mean of peer ids = %.4f)\n",
                to_ms(sim.now()), avg[0],
                (static_cast<double>(topo.peer_count) - 1.0) / 2.0);
  };
  agg.on_model_received = [&](secagg::RoundId, PeerId,
                              const secagg::Vector&) { ++received; };

  // Peer p contributes the constant model (p).
  agg.begin_round(1, [](PeerId p) {
    return secagg::Vector(4, static_cast<float>(p));
  });
  sim.run();

  const double measured_units =
      static_cast<double>(net.stats().sent.bytes) / 5'000'000.0;
  std::printf("[%6.0fms] all %zu peers received the result\n",
              to_ms(sim.now()), received);
  std::printf("\nwire cost: %.0f |w| units measured, Eq. (10) predicts "
              "%.0f — %s\n",
              measured_units, analysis::multilayer_cost(n, layers),
              measured_units == analysis::multilayer_cost(n, layers)
                  ? "exact match"
                  : "MISMATCH");
  return 0;
}
