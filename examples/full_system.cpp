// The complete system, end to end: Raft-backed leadership, SAC + FedAvg
// aggregation over the simulated network, real local training — and a
// FedAvg-leader crash in the middle of training that the system heals
// on its own while rounds keep completing.
#include <cstdio>

#include "core/system.hpp"

using namespace p2pfl;
using namespace p2pfl::core;

int main() {
  sim::Simulator sim(99);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});

  // Data: synthetic MNIST-like, IID across 9 peers.
  fl::SyntheticSpec spec = fl::mnist_like();
  spec.train_samples = 1800;
  spec.test_samples = 400;
  spec.noise_scale = 2.4;
  Rng data_rng(1);
  const fl::TrainTest data = fl::make_synthetic(spec, data_rng);
  const fl::PeerIndices parts = fl::partition_iid(data.train, 9, data_rng);

  SystemConfig cfg;
  cfg.raft.raft.election_timeout_min = 150 * kMillisecond;
  cfg.raft.raft.election_timeout_max = 300 * kMillisecond;
  cfg.agg.sac_dropout_tolerance = 1;  // (n-1)-out-of-n SAC in subgroups
  cfg.round_interval = 2 * kSecond;
  cfg.train_duration = 500 * kMillisecond;
  cfg.learning_rate = 2e-3f;

  P2pFlSystem sys(Topology::even(9, 3), cfg, net, data.train, data.test,
                  parts, [] {
                    return fl::Model::mlp(28 * 28, {32});
                  });
  sys.on_round_complete = [&](std::uint64_t, const secagg::Vector&,
                              std::size_t groups) {
    std::printf("[%7.1fs] aggregation round %zu complete (%zu subgroups)\n",
                to_ms(sim.now()) / 1000.0, sys.rounds_completed(), groups);
  };

  std::printf("== start: 9 peers, 3 subgroups, SAC tolerance 1 ==\n");
  sys.start();
  sim.run_for(20 * kSecond);
  auto ev = sys.evaluate_global();
  std::printf("after %zu rounds: accuracy %.1f%%\n\n", sys.rounds_completed(),
              ev.accuracy * 100.0);

  const PeerId fed = sys.raft().fedavg_leader();
  std::printf("== crashing the FedAvg leader (peer %u) mid-training ==\n",
              fed);
  sys.crash_peer(fed);
  sim.run_for(30 * kSecond);
  ev = sys.evaluate_global();
  std::printf("\nafter self-healing: %zu rounds total, new FedAvg leader "
              "%u, accuracy %.1f%%\n",
              sys.rounds_completed(), sys.raft().fedavg_leader(),
              ev.accuracy * 100.0);

  std::printf("\ncommunication so far: %.1f MB in %llu messages\n",
              static_cast<double>(net.stats().sent.bytes) / 1e6,
              static_cast<unsigned long long>(net.stats().sent.messages));
  return 0;
}
