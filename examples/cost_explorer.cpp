// Interactive-ish cost explorer: given N peers, a target subgroup size n
// and a threshold k, print what one aggregation round costs under every
// scheme the paper discusses, and where the savings come from.
//
// Usage: cost_explorer [N] [n] [k] [params]
#include <cstdio>
#include <cstdlib>

#include "analysis/cost_model.hpp"
#include "core/agg_cost_sim.hpp"

int main(int argc, char** argv) {
  using namespace p2pfl;
  const std::size_t N = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 30;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const std::size_t k = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;
  const analysis::ModelSize w{
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1'250'000};

  if (n < 1 || n > N || k < 1 || k > n) {
    std::fprintf(stderr, "need 1 <= k <= n <= N\n");
    return 1;
  }

  const auto groups = analysis::subgroups_by_target_size(N, n);
  std::printf("N=%zu peers -> %zu subgroups of ~%zu, |w| = %.0f Mb "
              "(%llu params)\n\n",
              N, groups.size(), n, w.megabits(),
              static_cast<unsigned long long>(w.params));

  const double baseline = analysis::one_layer_sac_cost(N);
  const double plain = analysis::two_layer_cost(groups);
  const double ft = analysis::two_layer_ft_cost(groups, n, k);

  std::printf("%-38s %10s %10s %9s\n", "scheme", "|w| units", "Gb",
              "vs 1-layer");
  std::printf("%-38s %10.0f %10.2f %8.2fx\n", "one-layer SAC (Alg. 2)",
              baseline, w.gigabits_for(baseline), 1.0);
  std::printf("%-38s %10.0f %10.2f %8.2fx\n",
              "two-layer, n-out-of-n SAC (Alg. 3)", plain,
              w.gigabits_for(plain), baseline / plain);
  std::printf("%-38s %10.0f %10.2f %8.2fx\n",
              "two-layer, k-out-of-n SAC (Alg. 4)", ft, w.gigabits_for(ft),
              baseline / ft);
  std::printf("%-38s %10.0f %10.2f %8.2fx\n", "plain FedAvg (no privacy)",
              2.0 * (N - 1), w.gigabits_for(2.0 * (N - 1)),
              baseline / (2.0 * (N - 1)));

  std::printf("\nwhere the k-out-of-n round's bytes go (simulated):\n");
  const auto sim = core::simulate_aggregation_cost(groups, n - k);
  std::printf("  subgroup SAC shares+subtotals : %7.0f units (%5.2f Gb)\n",
              sim.sac_units, w.gigabits_for(sim.sac_units));
  std::printf("  FedAvg uploads + result       : %7.0f units (%5.2f Gb)\n",
              sim.fedavg_units, w.gigabits_for(sim.fedavg_units));
  std::printf("  in-subgroup result broadcast  : %7.0f units (%5.2f Gb)\n",
              sim.broadcast_units, w.gigabits_for(sim.broadcast_units));
  std::printf("  total                         : %7.0f units (%5.2f Gb)\n",
              sim.total_units, w.gigabits_for(sim.total_units));

  std::printf("\nfault tolerance at this configuration:\n");
  std::printf("  each subgroup survives %zu dropouts during aggregation\n",
              n - k);
  std::printf("  backend tolerates up to %zu follower crashes "
              "(optimistic, §VII-D)\n",
              analysis::two_layer_optimistic_tolerance(groups.size(), n));
  std::printf("  FedAvg layer wedges at %zu simultaneous leader crashes\n",
              analysis::fedavg_fatal_leader_crashes(groups.size()));
  return 0;
}
