// Fault-tolerant SAC walkthrough — the Fig. 3 scenario, narrated.
//
// Three peers (Alice, Bob, Carol) run 2-out-of-3 SAC over the simulated
// network. Alice crashes right after distributing her shares; Bob (the
// leader) still reconstructs the average of ALL THREE models by asking a
// surviving replica holder for the missing subtotal. The same run with
// plain 3-out-of-3 SAC aborts, which is the paper's motivation for
// Alg. 4.
#include <cstdio>
#include <memory>
#include <vector>

#include "net/mux.hpp"
#include "net/network.hpp"
#include "secagg/sac_actor.hpp"

using namespace p2pfl;

namespace {

struct Peers {
  Peers(std::size_t n, secagg::SacActorOptions opts, sim::Simulator&,
        net::Network& net) {
    for (PeerId id = 0; id < n; ++id) {
      group.push_back(id);
      hosts.push_back(std::make_unique<net::PeerHost>());
      net.attach(id, hosts.back().get());
      actors.push_back(std::make_unique<secagg::SacPeer>(
          id, "sac/demo", opts, net, *hosts.back()));
    }
  }
  std::vector<PeerId> group;
  std::vector<std::unique_ptr<net::PeerHost>> hosts;
  std::vector<std::unique_ptr<secagg::SacPeer>> actors;
};

const char* kNames[] = {"Alice", "Bob", "Carol"};

void run(std::size_t k) {
  std::printf("--- %zu-out-of-3 SAC, Alice crashes after sharing ---\n", k);
  sim::Simulator sim(7);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  secagg::SacActorOptions opts;
  opts.k = k;
  opts.subtotal_timeout = 100 * kMillisecond;
  opts.share_timeout = 300 * kMillisecond;
  Peers peers(3, opts, sim, net);

  bool done = false;
  secagg::SacPeer& leader = *peers.actors[1];  // Bob leads
  leader.on_complete = [&](secagg::RoundId, const secagg::Vector& avg) {
    done = true;
    std::printf("[%6.0fms] Bob reconstructed the average: %.1f "
                "(models were 10, 20, 30)\n",
                to_ms(sim.now()), avg[0]);
  };
  leader.on_unrecoverable = [&](secagg::RoundId) {
    std::printf("[%6.0fms] Bob gives up: a subtotal has no surviving "
                "holder\n",
                to_ms(sim.now()));
  };
  leader.on_share_timeout = [&](secagg::RoundId,
                                const std::vector<std::size_t>& missing) {
    std::printf("[%6.0fms] share phase timed out; silent peers:",
                to_ms(sim.now()));
    for (std::size_t p : missing) std::printf(" %s", kNames[p]);
    std::printf("\n");
  };

  for (PeerId id = 0; id < 3; ++id) {
    secagg::Vector model(4, 10.0f * static_cast<float>(id + 1));
    std::printf("[%6.0fms] %s contributes a model of value %.0f and "
                "distributes shares\n",
                to_ms(sim.now()), kNames[id], 10.0 * (id + 1));
    peers.actors[id]->begin_round(1, std::move(model), peers.group, 1);
  }

  sim.run_for(1 * kMillisecond);  // shares are on the wire
  std::printf("[%6.0fms] *** Alice crashes (shares already sent) ***\n",
              to_ms(sim.now()));
  net.crash(0);
  peers.actors[0]->halt();

  sim.run_for(5 * kSecond);
  if (!done) {
    std::printf("=> aggregation FAILED (as expected for k = n: one dropout "
                "aborts Alg. 2)\n");
  } else {
    std::printf("=> aggregation SUCCEEDED; Alice's model is still included "
                "because her shares survived\n");
  }
  std::printf("network: %llu messages, %llu bytes\n\n",
              static_cast<unsigned long long>(net.stats().sent.messages),
              static_cast<unsigned long long>(net.stats().sent.bytes));
}

}  // namespace

int main() {
  run(2);  // fault-tolerant: recovers
  run(3);  // plain SAC: cannot proceed
  return 0;
}
