// Quickstart: train a global model with the two-layer secure
// aggregation system and compare it against the one-layer SAC baseline.
//
// Ten peers are split into subgroups of ~3 (as in Fig. 6's n=3 setting),
// train small MLPs on synthetic MNIST-like data, aggregate each round
// with SAC inside subgroups and FedAvg across them, and report test
// accuracy plus the communication cost both systems would pay per round
// for the paper's 1.25M-parameter CNN.
#include <cstdio>

#include "analysis/cost_model.hpp"
#include "core/fl_experiment.hpp"

int main() {
  using namespace p2pfl;

  core::FlExperimentConfig cfg;
  cfg.peers = 10;
  cfg.group_size = 3;  // three subgroups of 4/3/3 peers
  cfg.aggregation = core::AggregationKind::kTwoLayerSac;
  cfg.distribution = core::DataDistribution::kIid;
  cfg.rounds = 30;
  cfg.data = fl::mnist_like();
  cfg.data.train_samples = 2000;
  cfg.data.test_samples = 500;
  cfg.eval_every = 5;
  cfg.seed = 7;

  std::printf("p2pfl quickstart: N=%zu peers, subgroups of %zu, %zu rounds\n",
              cfg.peers, cfg.group_size, cfg.rounds);
  const auto result = core::run_fl_experiment(cfg, [](const auto& rec) {
    if (rec.test_accuracy) {
      std::printf("  round %3zu  train loss %.4f  test acc %5.2f%%\n",
                  rec.round, rec.train_loss, *rec.test_accuracy * 100.0);
    }
  });
  std::printf("final accuracy: %.2f%% (model: %zu params)\n\n",
              result.final_accuracy * 100.0, result.model_params);

  // What the same round costs on the wire for the paper's CNN.
  const analysis::ModelSize w;  // 1.25M parameters
  const auto groups = analysis::subgroups_by_target_size(cfg.peers, 3);
  std::printf("per-round communication for a %.0f Mb model:\n", w.megabits());
  std::printf("  one-layer SAC  : %6.2f Gb\n",
              w.gigabits_for(analysis::one_layer_sac_cost(cfg.peers)));
  std::printf("  two-layer (n=3): %6.2f Gb  (%.2fx less)\n",
              w.gigabits_for(analysis::two_layer_cost(groups)),
              analysis::one_layer_sac_cost(cfg.peers) /
                  analysis::two_layer_cost(groups));
  return 0;
}
