// Two-layer Raft failover walkthrough (§V, Figs. 10-12 narrated).
//
// Nine peers in three subgroups bootstrap the two-layer Raft backend,
// then we crash first a subgroup leader and then the FedAvg leader, and
// watch the system repair itself: subgroup election, the post-election
// callback joining the new leader into the FedAvg layer, and the double
// election after a FedAvg-leader crash.
#include <cstdio>

#include "core/two_layer_raft.hpp"

using namespace p2pfl;
using namespace p2pfl::core;

namespace {

void print_state(const TwoLayerRaftSystem& sys, sim::Simulator& sim) {
  std::printf("[%7.0fms] state:", to_ms(sim.now()));
  for (SubgroupId g = 0; g < sys.topology().subgroup_count(); ++g) {
    std::printf(" sg%u->", g);
    const PeerId l = sys.subgroup_leader(g);
    if (l == kNoPeer) {
      std::printf("??");
    } else {
      std::printf("%u", l);
    }
  }
  std::printf(" | FedAvg leader %d, members:",
              static_cast<int>(sys.fedavg_leader()));
  for (PeerId m : sys.fedavg_members()) std::printf(" %u", m);
  std::printf("\n");
}

void settle(TwoLayerRaftSystem& sys, sim::Simulator& sim) {
  const SimTime deadline = sim.now() + 30 * kSecond;
  while (sim.now() < deadline && !sys.stabilized()) {
    sim.run_for(20 * kMillisecond);
  }
}

}  // namespace

int main() {
  sim::Simulator sim(2024);
  net::Network net(sim, {.base_latency = 15 * kMillisecond});
  TwoLayerRaftOptions opts;
  opts.raft.election_timeout_min = 150 * kMillisecond;
  opts.raft.election_timeout_max = 300 * kMillisecond;
  TwoLayerRaftSystem sys(Topology::even(9, 3), opts, net);

  sys.on_subgroup_leader = [&](SubgroupId g, PeerId p) {
    std::printf("[%7.0fms] peer %u elected leader of subgroup %u\n",
                to_ms(sim.now()), p, g);
  };
  sys.on_fedavg_leader = [&](PeerId p) {
    std::printf("[%7.0fms] peer %u elected FedAvg-layer leader\n",
                to_ms(sim.now()), p);
  };
  sys.on_fedavg_joined = [&](PeerId p) {
    std::printf("[%7.0fms] peer %u confirmed as a FedAvg-layer member\n",
                to_ms(sim.now()), p);
  };

  std::printf("== bootstrap ==\n");
  sys.start_all();
  settle(sys, sim);
  print_state(sys, sim);

  std::printf("\n== crash a subgroup leader (Figs. 10-11 case) ==\n");
  const PeerId fed = sys.fedavg_leader();
  PeerId victim = kNoPeer;
  for (SubgroupId g = 0; g < 3; ++g) {
    if (sys.subgroup_leader(g) != fed) {
      victim = sys.subgroup_leader(g);
      break;
    }
  }
  std::printf("[%7.0fms] *** peer %u (subgroup leader) crashes ***\n",
              to_ms(sim.now()), victim);
  sys.crash_peer(victim);
  settle(sys, sim);
  print_state(sys, sim);

  std::printf("\n== crash the FedAvg leader (Fig. 12 case) ==\n");
  const PeerId fed2 = sys.fedavg_leader();
  std::printf("[%7.0fms] *** peer %u (FedAvg leader) crashes ***\n",
              to_ms(sim.now()), fed2);
  sys.crash_peer(fed2);
  settle(sys, sim);
  print_state(sys, sim);

  std::printf("\n== restart the first victim: it rejoins as a follower ==\n");
  sys.restart_peer(victim);
  sim.run_for(3 * kSecond);
  print_state(sys, sim);
  std::printf("peer %u role: %s (old leaders return as followers)\n", victim,
              raft::role_name(sys.subgroup_node(victim).role()));
  return 0;
}
